"""Small graph statistics and helpers used across examples and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError, GraphStructureError
from repro.graphs.components import connected_components, is_connected
from repro.graphs.core import Graph, Vertex

__all__ = [
    "density",
    "average_degree",
    "degree_histogram",
    "graph_summary",
    "random_vertex",
    "random_vertices",
    "ensure_connected",
    "triangle_count",
    "clustering_coefficient",
    "average_clustering",
]


def density(graph: Graph) -> float:
    """Return the edge density of *graph* (0 for graphs with < 2 vertices)."""
    n = graph.number_of_vertices()
    if n < 2:
        return 0.0
    m = graph.number_of_edges()
    possible = n * (n - 1)
    if not graph.directed:
        possible //= 2
    return m / possible


def average_degree(graph: Graph) -> float:
    """Return the mean degree."""
    n = graph.number_of_vertices()
    if n == 0:
        return 0.0
    return sum(graph.degree(v) for v in graph) / n


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return ``{degree: number of vertices with that degree}``."""
    histogram: Dict[int, int] = {}
    for v in graph:
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def graph_summary(graph: Graph) -> Dict[str, float]:
    """Return a compact statistics dictionary used in benchmark reports."""
    degrees = [graph.degree(v) for v in graph]
    n = graph.number_of_vertices()
    return {
        "vertices": float(n),
        "edges": float(graph.number_of_edges()),
        "density": density(graph),
        "average_degree": average_degree(graph),
        "max_degree": float(max(degrees)) if degrees else 0.0,
        "min_degree": float(min(degrees)) if degrees else 0.0,
        "components": float(len(connected_components(graph))),
    }


def random_vertex(graph: Graph, seed: RandomState = None) -> Vertex:
    """Return a vertex chosen uniformly at random."""
    if graph.number_of_vertices() == 0:
        raise GraphStructureError("cannot sample a vertex from an empty graph")
    rng = ensure_rng(seed)
    vertices = graph.vertices()
    return vertices[rng.randrange(len(vertices))]


def random_vertices(graph: Graph, k: int, seed: RandomState = None) -> List[Vertex]:
    """Return *k* distinct vertices chosen uniformly at random."""
    n = graph.number_of_vertices()
    if not 0 <= k <= n:
        raise ConfigurationError(f"k must be in [0, {n}], got {k}")
    rng = ensure_rng(seed)
    return rng.sample(graph.vertices(), k)


def ensure_connected(graph: Graph) -> None:
    """Raise :class:`GraphStructureError` unless *graph* is connected.

    The paper assumes connected input graphs; the high-level estimators call
    this before running so the error surfaces early and clearly.
    """
    if not is_connected(graph):
        raise GraphStructureError(
            "the input graph must be connected; extract the largest connected "
            "component first (repro.graphs.largest_connected_component)"
        )


def triangle_count(graph: Graph, vertex: Vertex) -> int:
    """Return the number of triangles through *vertex* (undirected graphs)."""
    graph.require_undirected()
    graph.validate_vertex(vertex)
    neighbors = list(graph.neighbors(vertex))
    count = 0
    neighbor_set = set(neighbors)
    for i, u in enumerate(neighbors):
        for v in neighbors[i + 1 :]:
            if graph.has_edge(u, v):
                count += 1
    return count


def clustering_coefficient(graph: Graph, vertex: Vertex) -> float:
    """Return the local clustering coefficient of *vertex*."""
    d = graph.degree(vertex)
    if d < 2:
        return 0.0
    possible = d * (d - 1) / 2
    return triangle_count(graph, vertex) / possible


def average_clustering(graph: Graph) -> float:
    """Return the mean local clustering coefficient over all vertices."""
    n = graph.number_of_vertices()
    if n == 0:
        return 0.0
    return sum(clustering_coefficient(graph, v) for v in graph) / n
