"""Synthetic graph generators.

The EDBT evaluation runs on real-world networks (collaboration, e-mail,
social and road networks).  Those traces are not redistributable here, so the
dataset registry (:mod:`repro.datasets`) builds stand-ins from the generators
in this module.  Each generator produces a topology *family* whose structural
properties — degree distribution, diameter regime, presence of balanced
separators — drive the behaviour of the samplers under study.

All generators return :class:`repro.graphs.core.Graph` instances and accept a
``seed`` so every experiment in the benchmark harness is reproducible.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Sequence

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError
from repro.graphs.core import Graph

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "binary_tree",
    "random_tree",
    "barbell_graph",
    "lollipop_graph",
    "erdos_renyi_graph",
    "gnm_random_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
    "connected_caveman_graph",
    "random_geometric_graph",
    "wheel_graph",
    "double_star_graph",
]


def _require_positive(name: str, value: int, minimum: int = 1) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ConfigurationError(f"{name} must be an integer >= {minimum}, got {value!r}")


# ----------------------------------------------------------------------
# Deterministic structured graphs
# ----------------------------------------------------------------------
def empty_graph(n: int = 0) -> Graph:
    """Return a graph with *n* isolated vertices labelled ``0..n-1``."""
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    graph = Graph()
    graph.add_vertices_from(range(n))
    return graph


def path_graph(n: int) -> Graph:
    """Return the path ``0 - 1 - ... - n-1``.

    Every internal vertex of a path is a (balanced only near the middle)
    vertex separator, which makes paths a useful edge case for the
    :math:`\\mu(r)` analysis.
    """
    _require_positive("n", n)
    graph = empty_graph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """Return the cycle on *n* >= 3 vertices."""
    _require_positive("n", n, minimum=3)
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def complete_graph(n: int) -> Graph:
    """Return the complete graph ``K_n``.

    Every vertex has betweenness zero, which exercises the degenerate-target
    handling of the samplers.
    """
    _require_positive("n", n)
    graph = empty_graph(n)
    for u, v in itertools.combinations(range(n), 2):
        graph.add_edge(u, v)
    return graph


def star_graph(n_leaves: int) -> Graph:
    """Return a star: centre ``0`` connected to leaves ``1..n_leaves``.

    The centre is the canonical balanced separator from the paper's
    discussion of Theorem 2 — its :math:`\\mu(r)` is constant regardless of
    the number of leaves.
    """
    _require_positive("n_leaves", n_leaves)
    graph = empty_graph(n_leaves + 1)
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def double_star_graph(left_leaves: int, right_leaves: int) -> Graph:
    """Return two stars whose centres are joined by an edge.

    Vertices: centre ``0`` with ``left_leaves`` leaves, centre ``1`` with
    ``right_leaves`` leaves.  Both centres are balanced separators; the
    bridge edge carries all cross traffic.
    """
    _require_positive("left_leaves", left_leaves)
    _require_positive("right_leaves", right_leaves)
    graph = Graph()
    graph.add_edge(0, 1)
    next_label = 2
    for _ in range(left_leaves):
        graph.add_edge(0, next_label)
        next_label += 1
    for _ in range(right_leaves):
        graph.add_edge(1, next_label)
        next_label += 1
    return graph


def wheel_graph(n_rim: int) -> Graph:
    """Return a wheel: a hub (vertex ``0``) connected to every rim vertex of a cycle."""
    _require_positive("n_rim", n_rim, minimum=3)
    graph = star_graph(n_rim)
    for i in range(1, n_rim):
        graph.add_edge(i, i + 1)
    graph.add_edge(n_rim, 1)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows x cols`` 2D grid (a road-network-like topology).

    Vertices are labelled ``r * cols + c``.
    """
    _require_positive("rows", rows)
    _require_positive("cols", cols)
    graph = empty_graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def binary_tree(depth: int) -> Graph:
    """Return the complete binary tree of the given *depth* (root = vertex 0).

    A depth-``d`` tree has ``2**(d+1) - 1`` vertices.  Internal vertices are
    separators whose balance degrades with depth, which gives the E4 sweep a
    middle ground between the star and the path.
    """
    if depth < 0:
        raise ConfigurationError("depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    graph = empty_graph(n)
    for v in range(n):
        left, right = 2 * v + 1, 2 * v + 2
        if left < n:
            graph.add_edge(v, left)
        if right < n:
            graph.add_edge(v, right)
    return graph


def barbell_graph(clique_size: int, bridge_length: int = 0) -> Graph:
    """Return a barbell: two ``K_m`` cliques joined by a path of *bridge_length* vertices.

    The bridge vertices (and the two clique vertices anchoring the bridge)
    are balanced separators — the textbook case where Theorem 2 guarantees a
    constant :math:`\\mu(r)`.

    Vertices ``0..m-1`` form the left clique, ``m..m+bridge_length-1`` the
    bridge, and the remaining ``m`` vertices the right clique.
    """
    _require_positive("clique_size", clique_size, minimum=2)
    if bridge_length < 0:
        raise ConfigurationError("bridge_length must be non-negative")
    m = clique_size
    graph = Graph()
    for u, v in itertools.combinations(range(m), 2):
        graph.add_edge(u, v)
    right_offset = m + bridge_length
    for u, v in itertools.combinations(range(right_offset, right_offset + m), 2):
        graph.add_edge(u, v)
    chain = [m - 1] + list(range(m, m + bridge_length)) + [right_offset]
    for a, b in zip(chain, chain[1:]):
        graph.add_edge(a, b)
    return graph


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """Return a lollipop: a ``K_m`` clique with a path of *path_length* vertices attached."""
    _require_positive("clique_size", clique_size, minimum=2)
    _require_positive("path_length", path_length)
    graph = Graph()
    for u, v in itertools.combinations(range(clique_size), 2):
        graph.add_edge(u, v)
    prev = clique_size - 1
    for i in range(path_length):
        nxt = clique_size + i
        graph.add_edge(prev, nxt)
        prev = nxt
    return graph


# ----------------------------------------------------------------------
# Random graph models
# ----------------------------------------------------------------------
def erdos_renyi_graph(n: int, p: float, seed: RandomState = None) -> Graph:
    """Return a ``G(n, p)`` Erdős–Rényi random graph.

    Uses the skip-ahead geometric sampling trick so the expected running time
    is ``O(n + m)`` instead of ``O(n^2)``, which matters for the larger
    benchmark graphs.
    """
    _require_positive("n", n)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p!r}")
    rng = ensure_rng(seed)
    graph = empty_graph(n)
    if p <= 0.0:
        return graph
    if p >= 1.0:
        return complete_graph(n)
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.floor(math.log(1.0 - r) / log_q))
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def gnm_random_graph(n: int, m: int, seed: RandomState = None) -> Graph:
    """Return a ``G(n, m)`` random graph with exactly *m* edges."""
    _require_positive("n", n)
    max_edges = n * (n - 1) // 2
    if not 0 <= m <= max_edges:
        raise ConfigurationError(f"m must be in [0, {max_edges}] for n={n}, got {m}")
    rng = ensure_rng(seed)
    graph = empty_graph(n)
    if m == max_edges:
        return complete_graph(n)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    return graph


def barabasi_albert_graph(n: int, m: int, seed: RandomState = None) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` vertices and attaches each new vertex to
    *m* existing vertices chosen proportionally to their degree.  Produces the
    heavy-tailed degree (and betweenness, per Barthelemy 2004) distribution
    typical of the social/collaboration networks in the EDBT evaluation.
    """
    _require_positive("n", n)
    _require_positive("m", m)
    if m >= n:
        raise ConfigurationError("m must be smaller than n")
    rng = ensure_rng(seed)
    graph = star_graph(m)
    # ``repeated`` holds one entry per edge endpoint, so uniform sampling from
    # it is degree-proportional sampling.
    repeated: List[int] = []
    for u, v in graph.edges():
        repeated.extend((u, v))
    for new_vertex in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(new_vertex, target)
            repeated.extend((new_vertex, target))
    return graph


def watts_strogatz_graph(
    n: int, k: int, p: float, seed: RandomState = None
) -> Graph:
    """Return a Watts–Strogatz small-world graph.

    Each vertex starts connected to its *k* nearest ring neighbours; each edge
    is rewired with probability *p*.  Models the high-clustering, short-path
    regime of e-mail/communication networks.
    """
    _require_positive("n", n, minimum=3)
    if k < 2 or k % 2 != 0:
        raise ConfigurationError("k must be an even integer >= 2")
    if k >= n:
        raise ConfigurationError("k must be smaller than n")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("p must be in [0, 1]")
    rng = ensure_rng(seed)
    graph = empty_graph(n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(v, (v + offset) % n)
    if p == 0.0:
        return graph
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            if rng.random() < p and graph.has_edge(v, u):
                candidates = [w for w in range(n) if w != v and not graph.has_edge(v, w)]
                if not candidates:
                    continue
                graph.remove_edge(v, u)
                graph.add_edge(v, rng.choice(candidates))
    return graph


def planted_partition_graph(
    n_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: RandomState = None,
) -> Graph:
    """Return a planted-partition (stochastic block model) graph.

    Vertices within the same community are connected with probability
    *p_in*, vertices in different communities with probability *p_out*.
    With ``p_in >> p_out`` this reproduces the community structure that
    motivates the "core vertices of communities" use case in the paper's
    introduction.
    """
    _require_positive("n_communities", n_communities)
    _require_positive("community_size", community_size)
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {p!r}")
    rng = ensure_rng(seed)
    n = n_communities * community_size
    graph = empty_graph(n)
    community = [v // community_size for v in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if community[u] == community[v] else p_out
            if p > 0.0 and rng.random() < p:
                graph.add_edge(u, v)
    return graph


def connected_caveman_graph(n_cliques: int, clique_size: int) -> Graph:
    """Return a connected caveman graph.

    *n_cliques* cliques of size *clique_size* arranged in a ring, where one
    edge of each clique is rewired to the next clique.  The connector
    vertices are near-balanced separators, giving the E4 benchmark a
    structured multi-community case.
    """
    _require_positive("n_cliques", n_cliques, minimum=2)
    _require_positive("clique_size", clique_size, minimum=2)
    graph = Graph()
    for c in range(n_cliques):
        base = c * clique_size
        members = range(base, base + clique_size)
        for u, v in itertools.combinations(members, 2):
            graph.add_edge(u, v)
    # Link clique c to clique c+1 via a single inter-clique edge.
    for c in range(n_cliques):
        a = c * clique_size  # first vertex of clique c
        b = ((c + 1) % n_cliques) * clique_size + 1  # second vertex of next clique
        if not graph.has_edge(a, b):
            graph.add_edge(a, b)
    return graph


def random_geometric_graph(n: int, radius: float, seed: RandomState = None) -> Graph:
    """Return a random geometric graph on the unit square.

    Vertices are random points; two vertices are adjacent when their
    Euclidean distance is below *radius*.  Models road/ad-hoc-network
    topologies (the MANET routing use case cited in the introduction).
    """
    _require_positive("n", n)
    if radius <= 0.0:
        raise ConfigurationError("radius must be positive")
    rng = ensure_rng(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    graph = empty_graph(n)
    radius_sq = radius * radius
    for u in range(n):
        ux, uy = points[u]
        for v in range(u + 1, n):
            vx, vy = points[v]
            dx, dy = ux - vx, uy - vy
            if dx * dx + dy * dy <= radius_sq:
                graph.add_edge(u, v)
    return graph


def random_tree(n: int, seed: RandomState = None) -> Graph:
    """Return a uniformly random labelled tree on *n* vertices (Prüfer decoding)."""
    _require_positive("n", n)
    if n == 1:
        return empty_graph(1)
    if n == 2:
        graph = empty_graph(2)
        graph.add_edge(0, 1)
        return graph
    rng = ensure_rng(seed)
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    return _tree_from_pruefer(sequence, n)


def _tree_from_pruefer(sequence: Sequence[int], n: int) -> Graph:
    """Decode a Prüfer *sequence* into the corresponding labelled tree."""
    degree = [1] * n
    for v in sequence:
        degree[v] += 1
    graph = empty_graph(n)
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in sequence:
        leaf = heapq.heappop(leaves)
        graph.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    graph.add_edge(u, w)
    return graph
