"""Zero-copy shared-memory CSR snapshots.

Shipping a :class:`~repro.graphs.csr.CSRGraph` to a worker pool normally
means pickling ``indptr``/``indices``/``weights`` into every worker — an
O(m)-per-worker copy in both time and resident memory, and the memory
ceiling on big graphs.  :class:`SharedCSRGraph` removes the copies the same
way :class:`~repro.execution.shared_cache.SharedDependencyStore` removed
duplicated dependency rows: the three arrays (plus the vertex-label table,
when the labels are not the identity ``0..n-1``) are packed once into a
single :mod:`multiprocessing.shared_memory` segment, and the object pickles
down to ``(segment name, header)``.  A worker that unpickles it re-attaches
to the segment lazily and maps **zero-copy numpy views** over the shared
buffer — per-worker incremental memory for the graph payload is O(1),
independent of ``m``.

Layout
------
One segment, 8-byte-aligned regions in order::

    [ indptr : int64 × (n+1) ][ indices : int64 × m ][ weights : float64 × m ]
    [ labels : pickled tuple, only when labels are not 0..n-1 ]

The header travelling with the pickle records the segment name, the region
offsets/dtypes, ``n``/``m``, the directed/weighted flags, the identity-label
flag and the originating ``graph.version`` stamp, so an attached view can be
validated against the snapshot it claims to be.

Identity fast path
------------------
Graphs built by the generators (and anything ingested through
:func:`repro.graphs.io.read_edge_list_csr` with integer vertices ``0..n-1``)
have label tables that carry no information.  For those the segment stores
no label blob at all and the attached view answers ``index_of`` /
``vertex_at`` arithmetically — attaching is O(1) in time *and* memory.
Non-identity labels are stored pickled and materialised lazily, only in
processes that actually translate between labels and indices (workers
operating purely in index space never pay for them).

Ownership
---------
The creating process owns the segment and must call :meth:`~SharedCSRGraph.destroy`
(or :meth:`~SharedCSRGraph.close` + :meth:`~SharedCSRGraph.unlink`); workers
that attach through pickling only ever :meth:`~SharedCSRGraph.close`.
Attaching never registers the segment with the worker's resource tracker
(``track=False``, with the registration-suppressed fallback on Python
< 3.13) so a worker exiting cannot unlink the segment behind the creator's
back — the same idiom as :mod:`repro.execution.shared_cache`.

:func:`ensure_shared_graph` adds a process-wide registry keyed by
``(id(graph), graph.version)``: repeated calls for the same unmutated graph
return the same persistent snapshot (so payloads interned by snapshot
identity stay stable), a mutation invalidates and destroys the stale
segment, and graphs that get garbage collected — or the interpreter exiting
— tear their segments down via ``weakref.finalize``/``atexit``.
"""

from __future__ import annotations

import atexit
import pickle
import warnings
import weakref
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError, VertexNotFoundError
from repro.graphs.csr import CSRGraph, np

try:  # pragma: no cover - exercised implicitly on unsupported platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "SharedCSRGraph",
    "create_shared_graph",
    "ensure_shared_graph",
    "discard_shared_graph",
    "shared_graph_available",
]

#: Memoized result of the allocation probe (see ``shared_cache.py`` for why
#: a real allocation is probed instead of trusting the module import).
_PROBE_RESULT: Optional[bool] = None


def shared_graph_available(*, refresh: bool = False) -> bool:
    """Return whether shared CSR snapshots can be created on this platform.

    Same contract as
    :func:`repro.execution.shared_cache.shared_memory_available` — cheap
    preconditions re-checked every call, the real ``shm_open`` probe
    memoized per process (``refresh=True`` forces a re-probe).  Duplicated
    here rather than imported so the graphs layer stays free of execution
    imports.
    """
    global _PROBE_RESULT
    if np is None or _shared_memory is None:
        return False
    if _PROBE_RESULT is None or refresh:
        _PROBE_RESULT = _probe_shared_memory()
    return _PROBE_RESULT


def _probe_shared_memory() -> bool:
    try:
        probe = _shared_memory.SharedMemory(create=True, size=8)
    except (OSError, PermissionError):  # pragma: no cover - platform dependent
        return False
    probe.close()
    try:  # pragma: no cover - platform dependent
        probe.unlink()
    except (OSError, FileNotFoundError):
        pass
    return True


def _attach(name: str):
    """Attach to an existing segment without re-registering it for cleanup.

    Python 3.13 grew ``track=False`` for exactly this: an attaching process
    must not hand the segment to its own resource tracker, whose exit-time
    leak sweep would unlink the segment behind the creator's back.  On older
    interpreters the attach is wrapped with the standard workaround —
    registration suppressed for the duration of the call — so spawned
    workers are safe there too (the creator remains the sole owner of the
    unlink).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        try:
            resource_tracker.register = lambda *args, **kwargs: None
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def _align(offset: int) -> int:
    """Round *offset* up to the next 8-byte boundary."""
    return (offset + 7) & ~7


def _is_identity_labels(vertices) -> bool:
    """Return whether the label table is exactly ``0, 1, ..., n-1``."""
    return all(type(v) is int and v == i for i, v in enumerate(vertices))


class SharedCSRGraph(CSRGraph):
    """A :class:`CSRGraph` whose arrays live in one shared-memory segment.

    Behaviourally a drop-in CSR snapshot: the attached ``indptr`` /
    ``indices`` / ``weights`` views are byte-equal to the source arrays, so
    every kernel that accepts a :class:`CSRGraph` produces bit-identical
    results on a shared one.  The views are marked read-only — the snapshot
    is shared between processes and must never be written through.

    Do not call the constructor directly: use :meth:`from_csr` (create and
    own a segment) or pickling (attach to an existing one).
    """

    __slots__ = ("_shm", "_header", "_owner")

    def __init__(self, shm, header: Dict[str, object], *, owner: bool) -> None:
        # Deliberately does NOT chain to CSRGraph.__init__: the parent
        # materialises the label tuple and the label->index dict eagerly
        # (O(n) per process), which is exactly the cost attaching must not
        # pay.  Labels are materialised lazily via _ensure_labels().
        self._shm = shm
        self._header = header
        self._owner = owner
        n = header["n"]
        m = header["m"]
        buf = shm.buf
        indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=buf, offset=header["indptr_offset"])
        indices = np.ndarray((m,), dtype=np.int64, buffer=buf, offset=header["indices_offset"])
        weights = np.ndarray((m,), dtype=np.float64, buffer=buf, offset=header["weights_offset"])
        for view in (indptr, indices, weights):
            view.flags.writeable = False
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.directed = header["directed"]
        self.weighted = header["weighted"]
        self._vertices = None
        self._index_of = None
        self._scipy_forward = None
        self._scipy_backward = None
        self._spmm_ok = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CSRGraph, *, version: int = 0) -> "SharedCSRGraph":
        """Pack *csr* into a fresh shared segment and return the owner view.

        ``version`` stamps the header with the originating
        :attr:`repro.graphs.core.Graph.version` so stale snapshots are
        detectable after a mutation.  Raises
        :class:`~repro.errors.ConfigurationError` when the platform lacks
        shared memory; use :func:`create_shared_graph` for the
        warn-and-fallback variant.
        """
        if np is None or _shared_memory is None:
            raise ConfigurationError(
                "SharedCSRGraph requires numpy and multiprocessing.shared_memory"
            )
        indptr = np.ascontiguousarray(csr.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(csr.indices, dtype=np.int64)
        weights = np.ascontiguousarray(csr.weights, dtype=np.float64)
        vertices = csr.vertices
        identity = _is_identity_labels(vertices)
        labels_blob = b"" if identity else pickle.dumps(vertices, protocol=pickle.HIGHEST_PROTOCOL)

        indptr_offset = 0
        indices_offset = _align(indptr_offset + indptr.nbytes)
        weights_offset = _align(indices_offset + indices.nbytes)
        labels_offset = _align(weights_offset + weights.nbytes)
        total = max(labels_offset + len(labels_blob), 8)

        shm = _shared_memory.SharedMemory(create=True, size=total)
        header: Dict[str, object] = {
            "name": shm.name,
            "n": len(vertices),
            "m": int(indices.shape[0]),
            "directed": bool(csr.directed),
            "weighted": bool(csr.weighted),
            "identity": identity,
            "version": int(version),
            "indptr_offset": indptr_offset,
            "indices_offset": indices_offset,
            "weights_offset": weights_offset,
            "labels_offset": labels_offset,
            "labels_nbytes": len(labels_blob),
            "dtypes": ("int64", "int64", "float64"),
        }
        buf = shm.buf
        np.ndarray(indptr.shape, dtype=np.int64, buffer=buf, offset=indptr_offset)[:] = indptr
        if header["m"]:
            np.ndarray(indices.shape, dtype=np.int64, buffer=buf, offset=indices_offset)[:] = indices
            np.ndarray(weights.shape, dtype=np.float64, buffer=buf, offset=weights_offset)[:] = weights
        if labels_blob:
            buf[labels_offset : labels_offset + len(labels_blob)] = labels_blob
        return cls(shm, header, owner=True)

    # -- header accessors ------------------------------------------------
    @property
    def segment_name(self) -> str:
        """Name of the backing shared-memory segment."""
        return self._header["name"]

    @property
    def version(self) -> int:
        """The ``graph.version`` stamp the snapshot was taken at."""
        return self._header["version"]

    @property
    def owner(self) -> bool:
        """Whether this process created (and must unlink) the segment."""
        return self._owner

    @property
    def nbytes(self) -> int:
        """Total size of the backing segment in bytes."""
        return self._shm.size

    # -- lazy label table ------------------------------------------------
    def _ensure_labels(self) -> None:
        if self._vertices is None:
            if self._header["identity"]:
                self._vertices = tuple(range(self._header["n"]))
            else:
                start = self._header["labels_offset"]
                blob = bytes(self._shm.buf[start : start + self._header["labels_nbytes"]])
                self._vertices = pickle.loads(blob)

    def _ensure_index(self) -> None:
        if self._index_of is None:
            self._ensure_labels()
            self._index_of = {v: i for i, v in enumerate(self._vertices)}

    def number_of_vertices(self) -> int:
        return self._header["n"]

    def __len__(self) -> int:
        return self._header["n"]

    @property
    def vertices(self):
        self._ensure_labels()
        return self._vertices

    def vertex_at(self, index: int):
        if self._header["identity"]:
            # range() indexing reproduces tuple semantics exactly
            # (negative indices, IndexError out of bounds).
            return range(self._header["n"])[index]
        self._ensure_labels()
        return self._vertices[index]

    def index_of(self, vertex) -> int:
        if self._header["identity"] and type(vertex) is int:
            if 0 <= vertex < self._header["n"]:
                return vertex
            raise VertexNotFoundError(vertex)
        self._ensure_index()
        try:
            return self._index_of[vertex]
        except (KeyError, TypeError):
            raise VertexNotFoundError(vertex) from None

    def find_index(self, vertex) -> Optional[int]:
        if self._header["identity"] and type(vertex) is int:
            return vertex if 0 <= vertex < self._header["n"] else None
        self._ensure_index()
        try:
            return self._index_of.get(vertex)
        except TypeError:
            return None

    def array_to_vertex_map(self, values) -> Dict[object, float]:
        if self._header["identity"]:
            return {i: float(values[i]) for i in range(self._header["n"])}
        self._ensure_labels()
        return {v: float(values[i]) for i, v in enumerate(self._vertices)}

    # -- pickling = attach ----------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        # The whole point: a shared snapshot ships as its header, not its
        # arrays.  The receiving process re-attaches lazily in __setstate__.
        return {"header": self._header}

    def __setstate__(self, state: Dict[str, object]) -> None:
        header = state["header"]
        self.__init__(_attach(header["name"]), header, owner=False)

    # -- lifecycle -------------------------------------------------------
    def _drop_views(self) -> None:
        self.indptr = None
        self.indices = None
        self.weights = None
        self._scipy_forward = None
        self._scipy_backward = None

    def close(self) -> None:
        """Release this process's mapping of the segment (keeps the data)."""
        if self._shm is None:
            return
        self._drop_views()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        self._shm = None

    def unlink(self) -> None:
        """Destroy the segment itself.  Only the owning process may call this."""
        if not self._owner or self._shm is None:
            return
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass

    def destroy(self) -> None:
        """Owner teardown: unlink the segment and release the local mapping."""
        if self._shm is None:
            return
        self._drop_views()
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover
            pass
        self._shm = None


def create_shared_graph(csr: CSRGraph, *, version: int = 0) -> Optional[SharedCSRGraph]:
    """Create a shared snapshot of *csr*, or ``None`` when the platform cannot.

    The warn-and-fallback twin of :meth:`SharedCSRGraph.from_csr`: callers
    degrade to shipping the plain (pickled) snapshot instead of failing.
    """
    if np is None or _shared_memory is None:
        warnings.warn(
            "shared graph snapshot requested but numpy/shared_memory are "
            "unavailable; falling back to pickled snapshot shipping",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    try:
        return SharedCSRGraph.from_csr(csr, version=version)
    except (OSError, PermissionError) as exc:  # pragma: no cover - platform dependent
        warnings.warn(
            f"could not allocate a shared-memory graph segment ({exc}); "
            "falling back to pickled snapshot shipping",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


# ----------------------------------------------------------------------
# Process-wide registry: one persistent segment per (graph, version)
# ----------------------------------------------------------------------
#: ``id(graph) -> (weakref, version, shared)``.  The weakref guards against
#: id() reuse after garbage collection and tears the segment down when the
#: graph dies; the version stamp invalidates on mutation.
_REGISTRY: Dict[int, Tuple["weakref.ref", int, SharedCSRGraph]] = {}


def _registry_drop(key: int) -> None:
    entry = _REGISTRY.pop(key, None)
    if entry is not None:
        entry[2].destroy()


def _registry_clear() -> None:  # pragma: no cover - exercised at interpreter exit
    for key in list(_REGISTRY):
        _registry_drop(key)


atexit.register(_registry_clear)


def ensure_shared_graph(graph) -> Optional[SharedCSRGraph]:
    """Return the process-wide shared snapshot of *graph* at its current version.

    Created once per ``(id(graph), graph.version)`` and returned unchanged
    until the graph mutates — so payloads keyed by snapshot identity stay
    interned across calls.  A mutation (version bump) destroys the stale
    segment and packs a fresh one; the graph being garbage collected (or the
    interpreter exiting) destroys its segment too.  Returns ``None`` with a
    warning when shared memory is unavailable.
    """
    if not shared_graph_available():
        warnings.warn(
            "shared graph snapshot requested but shared memory is unavailable "
            "on this platform; falling back to pickled snapshot shipping",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    key = id(graph)
    entry = _REGISTRY.get(key)
    if entry is not None:
        ref, version, shared = entry
        if ref() is graph and version == graph.version:
            return shared
        _registry_drop(key)
    shared = create_shared_graph(graph.csr(), version=graph.version)
    if shared is None:
        return None
    ref = weakref.ref(graph, lambda _ref, _key=key: _registry_drop(_key))
    # Stamp the *settled* version: a snapshot packed inside an open
    # batch_mutations() block must not be mistaken for the post-batch
    # graph, whose version it would otherwise share (the batch keeps
    # journaling under one version).  The pre-batch stamp can never equal
    # a post-mutation version, so the stale segment is rebuilt.
    _REGISTRY[key] = (ref, graph.settled_version(), shared)
    return shared


def discard_shared_graph(graph) -> None:
    """Destroy the registry snapshot of *graph*, if one exists."""
    _registry_drop(id(graph))
