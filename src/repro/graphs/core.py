"""Adjacency-list graph used by every algorithm in the library.

The paper (Section 2) works with undirected, connected, loop-free graphs
without multi-edges, optionally weighted with strictly positive weights.
:class:`Graph` implements exactly that model plus an optional *directed*
mode, because several substrates (the shortest-path DAG, the bidirectional
BFS sampler) are easiest to express on top of a directed view.

Design notes
------------
* Vertices are arbitrary hashable objects; the common case in the
  reproduction is small integers.
* The adjacency structure is ``dict[vertex, dict[vertex, weight]]``.  For an
  unweighted graph every stored weight is ``1.0``; this keeps a single code
  path for weighted and unweighted algorithms while the ``weighted`` flag
  records the caller's intent (and controls which shortest-path engine is
  used).
* The only derived cache the class keeps is the CSR snapshot returned by
  :meth:`Graph.csr`; every mutating operation drops it, so a stale view can
  never be observed through the graph.  All other derived data
  (shortest-path DAGs, dependency vectors) is owned by the algorithm layers,
  which decide their own caching policy.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.errors import (
    EdgeNotFoundError,
    GraphStructureError,
    NegativeWeightError,
    VertexNotFoundError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = ["Vertex", "Edge", "Graph", "GraphDelta", "DELTA_KINDS", "JOURNAL_LIMIT"]

#: Type alias for vertices; anything hashable is accepted.
Vertex = Hashable
#: Type alias for an edge as a pair of endpoints.
Edge = Tuple[Vertex, Vertex]

#: The typed mutation kinds a :class:`GraphDelta` can record.
DELTA_KINDS = (
    "edge-added",
    "edge-removed",
    "weight-changed",
    "vertex-added",
    "vertex-removed",
)

#: Maximum number of delta records the change journal retains.  Readers that
#: fall behind by more than this many mutations get ``None`` from
#: :meth:`Graph.journal_since` and must fall back to full invalidation —
#: the scalar ``version`` stamp remains the compatibility signal.
JOURNAL_LIMIT = 256


@dataclass(frozen=True)
class GraphDelta:
    """One typed mutation record in a graph's change journal.

    ``kind`` is one of :data:`DELTA_KINDS`.  Edge records carry both
    endpoints; ``weight-changed`` additionally carries the old and new
    weight so a weight-only CSR patch can be validated; vertex records
    carry the vertex in ``u``.  Deltas are immutable and picklable, so a
    journal travels with a pickled graph.
    """

    kind: str
    u: Optional[Vertex] = None
    v: Optional[Vertex] = None
    weight: Optional[float] = None
    old_weight: Optional[float] = None

    @property
    def structural(self) -> bool:
        """Whether the delta changes the vertex/edge *set* (not just a weight)."""
        return self.kind != "weight-changed"

    @property
    def touches_vertices(self) -> bool:
        """Whether the delta adds or removes a vertex (index space changes)."""
        return self.kind in ("vertex-added", "vertex-removed")


class Graph:
    """A simple graph (no self-loops, no multi-edges) with optional weights.

    Parameters
    ----------
    directed:
        When ``True`` edges are ordered pairs; the paper's algorithms operate
        on undirected graphs, but the directed mode is used internally and is
        exposed for completeness.
    weighted:
        When ``True`` the graph is treated as weighted with strictly positive
        weights and weighted shortest-path algorithms (Dijkstra) are used
        downstream.  When ``False`` all edge weights are fixed at ``1.0``.

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge(0, 1)
    >>> g.add_edge(1, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.number_of_vertices(), g.number_of_edges()
    (3, 2)
    """

    # __weakref__ lets the shared-snapshot registry of
    # :mod:`repro.graphs.shared` key segments by a weak reference, so a
    # garbage-collected graph tears its segment down instead of leaking it.
    __slots__ = (
        "_adj",
        "_pred",
        "_directed",
        "_weighted",
        "_num_edges",
        "_csr",
        "_stale_csr",
        "_version",
        "_journal",
        "_journal_floor",
        "_batch_depth",
        "_batch_bumped",
        "__weakref__",
    )

    def __init__(self, *, directed: bool = False, weighted: bool = False) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        # Predecessor map, only maintained for directed graphs.
        self._pred: Optional[Dict[Vertex, Dict[Vertex, float]]] = {} if directed else None
        self._directed = bool(directed)
        self._weighted = bool(weighted)
        self._num_edges = 0
        self._csr: Optional["CSRGraph"] = None
        # Last built CSR snapshot retained across a mutation, with the
        # version it was built at, so a weight-only delta can patch it in
        # place instead of paying a full O(m) rebuild (see :meth:`csr`).
        self._stale_csr: Optional[Tuple["CSRGraph", int]] = None
        self._version = 0
        # Bounded change journal: (version_after, GraphDelta) records, the
        # structured companion to the scalar version stamp.  The journal
        # covers the version interval (_journal_floor, _version]; readers
        # behind the floor must fall back to full invalidation.
        self._journal: Deque[Tuple[int, GraphDelta]] = deque()
        self._journal_floor = 0
        self._batch_depth = 0
        self._batch_bumped = False

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        """Whether edges are ordered pairs."""
        return self._directed

    @property
    def weighted(self) -> bool:
        """Whether the graph carries meaningful positive edge weights."""
        return self._weighted

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every mutating operation).

        Derived caches that outlive a single call — the persistent
        dependency arena and worker payloads of
        :mod:`repro.execution.runtime` — stamp the version they were built
        against and treat any change as an invalidation signal, the
        cross-call analogue of the CSR snapshot being dropped on mutation.
        """
        return self._version

    @property
    def in_batch(self) -> bool:
        """Whether a :meth:`batch_mutations` block is currently open."""
        return self._batch_depth > 0

    def settled_version(self) -> int:
        """The newest version that can no longer acquire journal records.

        Equal to :attr:`version` except inside an open
        :meth:`batch_mutations` block that has already bumped: the batch's
        version is still accumulating deltas, so a warm consumer that
        stamped it would silently skip every delta journaled after its
        read.  Consumers therefore stamp ``settled_version()`` — inside a
        bumped batch that is the *pre-batch* version, which keeps the
        batch window pending: every sync until the batch closes re-reads
        the whole window (idempotent for eviction), and the post-batch
        sync can never mistake the graph for unchanged.
        """
        if self._batch_depth > 0 and self._batch_bumped:
            return self._version - 1
        return self._version

    def _record(self, delta: GraphDelta) -> None:
        """Drop the CSR snapshot, advance the stamp and journal *delta*.

        Inside a :meth:`batch_mutations` block the version is bumped once
        (on the first recorded delta) while every delta still lands in the
        journal under that single new version — one observable invalidation
        per batch, full per-edge detail for delta-scoped consumers.
        """
        if self._csr is not None:
            self._stale_csr = (self._csr, self._version)
            self._csr = None
        if self._batch_depth > 0:
            if not self._batch_bumped:
                self._version += 1
                self._batch_bumped = True
        else:
            self._version += 1
        self._journal.append((self._version, delta))
        if len(self._journal) > JOURNAL_LIMIT:
            dropped_version, _ = self._journal.popleft()
            self._journal_floor = dropped_version
            # A batch shares one version across its deltas: returning a
            # partial batch would under-report the change set, so every
            # record at or below the floor is dropped with it.
            while self._journal and self._journal[0][0] <= self._journal_floor:
                self._journal.popleft()

    @contextlib.contextmanager
    def batch_mutations(self) -> Iterator["Graph"]:
        """Group several mutations under one version bump.

        An N-edge bulk load through :meth:`add_edges_from` used to bump the
        version (and drop the CSR snapshot) once per edge, so every warm
        consumer saw N invalidation signals for one logical change.  Inside
        this context the first mutation bumps the version once; subsequent
        mutations journal their deltas under the same new version.  Nesting
        is allowed (only the outermost block owns the bump), and a block
        that performs no mutation leaves the version untouched.

        Reading (or even querying a warm session) inside an open block is
        legal: the batch's version keeps accumulating deltas until the
        block exits, so warm consumers stamp :meth:`settled_version` —
        never the in-flight batch version — and a mid-batch read can
        therefore never seal the window early (see
        :meth:`settled_version`).

        Examples
        --------
        >>> g = Graph.from_edges([(0, 1)])
        >>> before = g.version
        >>> with g.batch_mutations():
        ...     g.add_edge(1, 2)
        ...     g.add_edge(2, 3)
        >>> g.version == before + 1
        True
        """
        if self._batch_depth == 0:
            self._batch_bumped = False
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1

    def journal_since(self, version: int) -> Optional[Tuple[GraphDelta, ...]]:
        """Return the deltas applied after *version*, oldest first.

        Returns ``()`` when the graph is unchanged since *version*, and
        ``None`` when the journal cannot answer — *version* predates the
        bounded journal's floor (overflow) or postdates the current stamp
        (a different graph's stamp) — in which case the caller must treat
        everything as changed, exactly as the scalar-version protocol did.
        """
        if version == self._version:
            return ()
        if version < self._journal_floor or version > self._version:
            return None
        return tuple(delta for stamped, delta in self._journal if stamped > version)

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle the adjacency only — never the cached CSR snapshot.

        Default ``__slots__`` pickling would ship ``_csr`` (three O(m)
        arrays) alongside the dict adjacency, doubling every worker
        payload that carries a graph.  Payloads that need the snapshot in
        the worker ship it explicitly — as a plain array bundle or a
        zero-copy :class:`~repro.graphs.shared.SharedCSRGraph` handle —
        and prime the unpickled graph via :meth:`adopt_csr`.
        """
        return {
            slot: getattr(self, slot)
            for slot in Graph.__slots__
            if slot not in ("_csr", "_stale_csr", "__weakref__")
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._csr = None
        self._stale_csr = None
        for slot, value in state.items():
            setattr(self, slot, value)

    def adopt_csr(self, snapshot: "CSRGraph") -> None:
        """Adopt *snapshot* as the cached CSR view when none is cached yet.

        Worker-side priming: a payload that ships ``(graph, snapshot)``
        separately (the snapshot possibly attached zero-copy from shared
        memory) reunites them so a subsequent :meth:`csr` call returns the
        shipped view instead of rebuilding O(m) arrays.  The caller asserts
        the snapshot describes this graph at its current version; a no-op
        when a cached view already exists.
        """
        if self._csr is None:
            self._csr = snapshot

    def number_of_vertices(self) -> int:
        """Return ``|V(G)|``."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return ``|E(G)|`` (each undirected edge counted once)."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "DiGraph" if self._directed else "Graph"
        weight = "weighted" if self._weighted else "unweighted"
        return (
            f"<{kind} ({weight}) with {self.number_of_vertices()} vertices "
            f"and {self.number_of_edges()} edges>"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add *vertex* to the graph (no-op if already present)."""
        if vertex not in self._adj:
            self._adj[vertex] = {}
            if self._pred is not None:
                self._pred[vertex] = {}
            self._record(GraphDelta("vertex-added", u=vertex))

    def add_vertices_from(self, vertices: Iterable[Vertex]) -> None:
        """Add every vertex in *vertices* (one version bump for the batch)."""
        with self.batch_mutations():
            for vertex in vertices:
                self.add_vertex(vertex)

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add the edge ``(u, v)`` with the given *weight*.

        Endpoints are added automatically.  Self-loops are rejected because
        the paper's model is loop-free.  Re-adding an existing edge updates
        its weight (simple graph: no multi-edges).

        Raises
        ------
        GraphStructureError
            If ``u == v``.
        NegativeWeightError
            If the graph is weighted and *weight* is not strictly positive.
        """
        if u == v:
            raise GraphStructureError(f"self-loop on vertex {u!r} is not allowed")
        weight = float(weight)
        if self._weighted and weight <= 0.0:
            raise NegativeWeightError(u, v, weight)
        if not self._weighted:
            weight = 1.0
        self.add_vertex(u)
        self.add_vertex(v)
        is_new = v not in self._adj[u]
        if is_new:
            self._record(GraphDelta("edge-added", u=u, v=v, weight=weight))
        elif self._adj[u][v] != weight:
            self._record(
                GraphDelta(
                    "weight-changed",
                    u=u,
                    v=v,
                    weight=weight,
                    old_weight=self._adj[u][v],
                )
            )
        # An idempotent upsert (same edge, same weight) records nothing: it
        # must not drop the CSR snapshot or bump the version stamp that
        # session-scoped warm state (arena, worker payloads) is keyed on.
        self._adj[u][v] = weight
        if self._directed:
            assert self._pred is not None
            self._pred[v][u] = weight
        else:
            self._adj[v][u] = weight
        if is_new:
            self._num_edges += 1

    def add_edges_from(
        self, edges: Iterable[Tuple[Vertex, ...]], weight: float = 1.0
    ) -> None:
        """Add every edge in *edges*.

        Each element may be a pair ``(u, v)`` (using the default *weight*) or
        a triple ``(u, v, w)``.
        """
        with self.batch_mutations():
            for edge in edges:
                if len(edge) == 2:
                    u, v = edge
                    self.add_edge(u, v, weight)
                elif len(edge) == 3:
                    u, v, w = edge
                    self.add_edge(u, v, w)
                else:
                    raise ValueError(
                        f"edge tuples must have 2 or 3 elements, got {edge!r}"
                    )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, ...]],
        *,
        directed: bool = False,
        weighted: bool = False,
    ) -> "Graph":
        """Build a graph directly from an iterable of edges.

        Each element may be a pair ``(u, v)`` or a triple ``(u, v, w)``; the
        triple form requires ``weighted=True`` for the weight to be kept.
        This is the one-liner replacement for the ``g = Graph();
        g.add_edge(...)`` loops that used to pepper examples and fixtures.

        Examples
        --------
        >>> g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        >>> g.number_of_vertices(), g.number_of_edges()
        (3, 3)
        """
        graph = cls(directed=directed, weighted=weighted)
        graph.add_edges_from(edges)
        return graph

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._record(GraphDelta("edge-removed", u=u, v=v, old_weight=self._adj[u][v]))
        del self._adj[u][v]
        if self._directed:
            assert self._pred is not None
            del self._pred[v][u]
        else:
            del self._adj[v][u]
        self._num_edges -= 1

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove *vertex* and every incident edge.

        Raises
        ------
        VertexNotFoundError
            If *vertex* is not in the graph.
        """
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        # One journal record for the vertex and all incident edges: delta
        # consumers treat any vertex removal as a full-invalidation signal
        # (the CSR index space changes), so per-edge detail is not needed.
        self._record(GraphDelta("vertex-removed", u=vertex))
        if self._directed:
            assert self._pred is not None
            out_neighbors = list(self._adj[vertex])
            in_neighbors = list(self._pred[vertex])
            for v in out_neighbors:
                del self._pred[v][vertex]
                self._num_edges -= 1
            for u in in_neighbors:
                del self._adj[u][vertex]
                self._num_edges -= 1
            del self._pred[vertex]
        else:
            neighbors = list(self._adj[vertex])
            for v in neighbors:
                del self._adj[v][vertex]
                self._num_edges -= 1
        del self._adj[vertex]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def vertices(self) -> List[Vertex]:
        """Return a list of all vertices (insertion order)."""
        return list(self._adj)

    def edges(self, data: bool = False) -> Iterator[Tuple]:
        """Iterate over edges.

        For undirected graphs each edge is yielded exactly once.  With
        ``data=True`` each item is ``(u, v, weight)``.
        """
        if self._directed:
            for u, nbrs in self._adj.items():
                for v, w in nbrs.items():
                    yield (u, v, w) if data else (u, v)
        else:
            seen = set()
            for u, nbrs in self._adj.items():
                for v, w in nbrs.items():
                    if v in seen:
                        continue
                    yield (u, v, w) if data else (u, v)
                seen.add(u)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if *vertex* is in the graph."""
        return vertex in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the edge ``(u, v)`` is in the graph."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate over the (out-)neighbours of *vertex*."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return iter(self._adj[vertex])

    def predecessors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate over in-neighbours (directed) or neighbours (undirected)."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        if self._directed:
            assert self._pred is not None
            return iter(self._pred[vertex])
        return iter(self._adj[vertex])

    def adjacency(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Return a read-only view of ``{neighbour: weight}`` for *vertex*."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return dict(self._adj[vertex])

    def degree(self, vertex: Vertex) -> int:
        """Return the (out-)degree of *vertex*."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return len(self._adj[vertex])

    def in_degree(self, vertex: Vertex) -> int:
        """Return the in-degree of *vertex* (equals degree for undirected graphs)."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        if self._directed:
            assert self._pred is not None
            return len(self._pred[vertex])
        return len(self._adj[vertex])

    def edge_weight(self, u: Vertex, v: Vertex) -> float:
        """Return the weight of edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        return self._adj[u][v]

    def degree_sequence(self) -> List[int]:
        """Return the sorted (descending) degree sequence."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    # ------------------------------------------------------------------
    # CSR view
    # ------------------------------------------------------------------
    def csr(self) -> "CSRGraph":
        """Return the cached immutable CSR snapshot of the graph.

        The snapshot is built lazily on first call and re-used until the next
        mutating operation (``add_vertex`` / ``add_edge`` / ``remove_edge`` /
        ``remove_vertex``), which drops the cache; see
        :mod:`repro.graphs.csr` for the immutability contract.  Requires
        numpy; raises :class:`~repro.errors.ConfigurationError` without it.
        """
        if self._csr is None:
            from repro.graphs.csr import CSRGraph

            snapshot: Optional["CSRGraph"] = None
            if self._stale_csr is not None:
                base, base_version = self._stale_csr
                deltas = self.journal_since(base_version)
                if deltas and all(d.kind == "weight-changed" for d in deltas):
                    # Weight-only drift: the structure (and therefore the
                    # indptr/indices arrays) is unchanged since the retained
                    # snapshot, so patch the weights in place of a full
                    # O(m) rebuild.  Equivalent bit-for-bit to from_graph:
                    # updating an existing dict key preserves adjacency
                    # order, so a rebuild would produce the same arrays.
                    snapshot = base.patched((d.u, d.v, d.weight) for d in deltas)
            self._stale_csr = None
            if snapshot is None:
                snapshot = CSRGraph.from_graph(self)
            self._csr = snapshot
        return self._csr

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return an independent copy of the graph."""
        new = Graph(directed=self._directed, weighted=self._weighted)
        for vertex in self._adj:
            new.add_vertex(vertex)
        for u, v, w in self.edges(data=True):
            new.add_edge(u, v, w)
        return new

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by *vertices*.

        Unknown vertices are ignored, mirroring the common "induce on an
        arbitrary vertex set" usage in component extraction.
        """
        keep = {v for v in vertices if v in self._adj}
        new = Graph(directed=self._directed, weighted=self._weighted)
        for vertex in keep:
            new.add_vertex(vertex)
        for u in keep:
            for v, w in self._adj[u].items():
                if v in keep:
                    if self._directed or not new.has_edge(u, v):
                        new.add_edge(u, v, w)
        return new

    def without_vertex(self, vertex: Vertex) -> "Graph":
        """Return a copy of the graph with *vertex* (and incident edges) removed.

        This is the ``G \\ v`` operation from Section 2 of the paper (before
        splitting into connected components).
        """
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        remaining = (u for u in self._adj if u != vertex)
        return self.subgraph(remaining)

    def to_undirected(self) -> "Graph":
        """Return an undirected copy (collapsing edge directions)."""
        new = Graph(directed=False, weighted=self._weighted)
        for vertex in self._adj:
            new.add_vertex(vertex)
        for u, v, w in self.edges(data=True):
            new.add_edge(u, v, w)
        return new

    def relabelled(self) -> Tuple["Graph", Dict[Vertex, int]]:
        """Return a copy with vertices relabelled ``0..n-1`` plus the mapping.

        Useful before handing a graph to array-based tooling; the mapping is
        ``{original_label: new_index}``.
        """
        mapping = {v: i for i, v in enumerate(self._adj)}
        new = Graph(directed=self._directed, weighted=self._weighted)
        for vertex in self._adj:
            new.add_vertex(mapping[vertex])
        for u, v, w in self.edges(data=True):
            new.add_edge(mapping[u], mapping[v], w)
        return new, mapping

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def validate_vertex(self, vertex: Vertex) -> None:
        """Raise :class:`VertexNotFoundError` unless *vertex* is present."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)

    def require_undirected(self) -> None:
        """Raise :class:`GraphStructureError` if the graph is directed."""
        if self._directed:
            raise GraphStructureError("this operation requires an undirected graph")
