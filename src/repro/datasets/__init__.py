"""Synthetic stand-ins for the real-world networks of the EDBT evaluation."""

from repro.datasets.builders import (
    pick_reference_set,
    pick_targets,
    positive_betweenness_vertices,
)
from repro.datasets.registry import (
    DATASETS,
    SIZES,
    DatasetSpec,
    dataset_names,
    dataset_table,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SIZES",
    "load_dataset",
    "dataset_names",
    "dataset_table",
    "pick_targets",
    "pick_reference_set",
    "positive_betweenness_vertices",
]
