"""Named benchmark datasets.

The EDBT evaluation uses real-world networks from public repositories
(e-mail, collaboration, social and road networks).  Those traces cannot be
bundled offline, so every dataset here is a **synthetic stand-in built from
the generator of the same topology family**, scaled to sizes a pure-Python
reproduction can sweep in seconds:

=================  =========================  ===============================
Dataset name       Stands in for              Generator / rationale
=================  =========================  ===============================
``email``          e-mail communication nets  Watts–Strogatz small world:
                                              high clustering, short paths.
``collaboration``  co-authorship networks     Barabási–Albert: heavy-tailed
                                              degree (and betweenness).
``social``         online social networks     Planted partition: strong
                                              community structure, the "core
                                              vertices" use case.
``road``           road networks              2D grid: large diameter, flat
                                              betweenness distribution.
``p2p``            peer-to-peer overlays      Erdős–Rényi: near-Poisson
                                              degrees, weak structure.
``adhoc``          wireless ad-hoc (MANET)    Random geometric graph: the
                                              Daly & Haahr routing use case.
``caveman``        clustered organisations    Connected caveman: explicit
                                              balanced separators.
``barbell``        worst/best case analysis   Barbell: textbook separator
                                              vertices for Theorem 2.
=================  =========================  ===============================

Each entry can be built at three sizes (``tiny``, ``small``, ``medium``) so
the test-suite, the examples and the benchmark harness can pick their own
cost/fidelity trade-off.  All builders return connected graphs (the paper's
standing assumption) by extracting the largest connected component when the
random model does not guarantee connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro._rng import RandomState
from repro.errors import DatasetError
from repro.graphs import generators
from repro.graphs.components import largest_connected_component
from repro.graphs.core import Graph

__all__ = ["DatasetSpec", "DATASETS", "SIZES", "load_dataset", "dataset_names", "dataset_table"]

#: Supported size tiers.
SIZES = ("tiny", "small", "medium")


@dataclass
class DatasetSpec:
    """Description of one named dataset."""

    name: str
    family: str
    stands_in_for: str
    builder: Callable[[str, RandomState], Graph]
    description: str = ""

    def build(self, size: str = "small", seed: RandomState = 0) -> Graph:
        """Build the dataset at the requested *size*."""
        if size not in SIZES:
            raise DatasetError(f"unknown size {size!r}; expected one of {SIZES}")
        graph = self.builder(size, seed)
        if graph.number_of_vertices() == 0:
            raise DatasetError(f"dataset {self.name!r} built an empty graph")
        return graph


def _sized(tiny: int, small: int, medium: int) -> Dict[str, int]:
    return {"tiny": tiny, "small": small, "medium": medium}


def _email(size: str, seed: RandomState) -> Graph:
    n = _sized(60, 200, 600)[size]
    graph = generators.watts_strogatz_graph(n, 6, 0.1, seed=seed)
    return largest_connected_component(graph)


def _collaboration(size: str, seed: RandomState) -> Graph:
    n = _sized(60, 200, 600)[size]
    return generators.barabasi_albert_graph(n, 3, seed=seed)


def _social(size: str, seed: RandomState) -> Graph:
    communities = _sized(3, 5, 8)[size]
    members = _sized(15, 30, 60)[size]
    graph = generators.planted_partition_graph(communities, members, 0.25, 0.01, seed=seed)
    return largest_connected_component(graph)


def _road(size: str, seed: RandomState) -> Graph:
    side = _sized(7, 12, 22)[size]
    return generators.grid_graph(side, side)


def _p2p(size: str, seed: RandomState) -> Graph:
    n = _sized(60, 200, 600)[size]
    graph = generators.erdos_renyi_graph(n, 6.0 / n, seed=seed)
    return largest_connected_component(graph)


def _adhoc(size: str, seed: RandomState) -> Graph:
    n = _sized(60, 150, 400)[size]
    radius = {"tiny": 0.3, "small": 0.2, "medium": 0.12}[size]
    graph = generators.random_geometric_graph(n, radius, seed=seed)
    return largest_connected_component(graph)


def _caveman(size: str, seed: RandomState) -> Graph:
    cliques = _sized(4, 8, 14)[size]
    clique_size = _sized(6, 8, 10)[size]
    return generators.connected_caveman_graph(cliques, clique_size)


def _barbell(size: str, seed: RandomState) -> Graph:
    clique = _sized(10, 25, 60)[size]
    return generators.barbell_graph(clique, 3)


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="email",
            family="small-world",
            stands_in_for="e-mail communication networks (e.g. email-Enron)",
            builder=_email,
            description="Watts–Strogatz graph: high clustering, short average paths.",
        ),
        DatasetSpec(
            name="collaboration",
            family="scale-free",
            stands_in_for="co-authorship networks (e.g. com-DBLP)",
            builder=_collaboration,
            description="Barabási–Albert graph: heavy-tailed degree and betweenness.",
        ),
        DatasetSpec(
            name="social",
            family="community",
            stands_in_for="online social networks with community structure",
            builder=_social,
            description="Planted-partition graph: dense communities, sparse bridges.",
        ),
        DatasetSpec(
            name="road",
            family="mesh",
            stands_in_for="road networks",
            builder=_road,
            description="2D grid: high diameter, flat centrality profile.",
        ),
        DatasetSpec(
            name="p2p",
            family="random",
            stands_in_for="peer-to-peer overlay snapshots (e.g. p2p-Gnutella)",
            builder=_p2p,
            description="Erdős–Rényi graph restricted to its giant component.",
        ),
        DatasetSpec(
            name="adhoc",
            family="geometric",
            stands_in_for="wireless ad-hoc / MANET topologies",
            builder=_adhoc,
            description="Random geometric graph on the unit square.",
        ),
        DatasetSpec(
            name="caveman",
            family="community",
            stands_in_for="clustered organisational networks",
            builder=_caveman,
            description="Connected caveman graph with explicit connector vertices.",
        ),
        DatasetSpec(
            name="barbell",
            family="structured",
            stands_in_for="worst/best-case separator analysis",
            builder=_barbell,
            description="Two cliques joined by a short bridge (Theorem 2 showcase).",
        ),
    )
}


def dataset_names() -> List[str]:
    """Return the sorted list of available dataset names."""
    return sorted(DATASETS)


def load_dataset(name: str, *, size: str = "small", seed: RandomState = 0) -> Graph:
    """Build and return the named dataset.

    Raises
    ------
    DatasetError
        If *name* or *size* is unknown.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available datasets: {', '.join(dataset_names())}"
        ) from None
    return spec.build(size=size, seed=seed)


def dataset_table() -> List[Dict[str, str]]:
    """Return a row-per-dataset summary used in the documentation and the CLI."""
    return [
        {
            "name": spec.name,
            "family": spec.family,
            "stands_in_for": spec.stands_in_for,
            "description": spec.description,
        }
        for spec in DATASETS.values()
    ]
