"""Target-vertex pickers and workload helpers for the benchmark harness.

Benchmarks E1, E3 and E5 need target vertices "at high / median / low
betweenness" and reference sets of mixed centrality.  Computing those from
exact scores keeps the experiments honest (targets are defined by ground
truth, not by the estimator under test).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError
from repro.exact.brandes import betweenness_centrality
from repro.graphs.core import Graph, Vertex

__all__ = ["pick_targets", "pick_reference_set", "positive_betweenness_vertices"]


def positive_betweenness_vertices(graph: Graph) -> Dict[Vertex, float]:
    """Return ``{vertex: exact BC}`` restricted to vertices with positive betweenness."""
    scores = betweenness_centrality(graph)
    return {v: s for v, s in scores.items() if s > 0.0}


def pick_targets(graph: Graph, *, seed: RandomState = 0) -> Dict[str, Vertex]:
    """Return representative target vertices keyed ``"high"``, ``"median"`` and ``"low"``.

    ``high`` is the vertex with the maximum exact betweenness, ``median`` the
    one at the middle of the positive-betweenness ranking and ``low`` the
    positive vertex with the smallest score.  Vertices with zero betweenness
    are excluded because the MH target distribution is undefined for them
    (the estimators under comparison would all trivially return 0).
    """
    positive = positive_betweenness_vertices(graph)
    if not positive:
        raise ConfigurationError("the graph has no vertex with positive betweenness")
    ranked = sorted(positive, key=positive.get, reverse=True)
    return {
        "high": ranked[0],
        "median": ranked[len(ranked) // 2],
        "low": ranked[-1],
    }


def pick_reference_set(
    graph: Graph, size: int, *, seed: RandomState = 0
) -> List[Vertex]:
    """Return *size* vertices of mixed (positive) betweenness for the joint-space experiments.

    The set always contains the top vertex, the lowest positive vertex, and
    evenly spaced ranks in between, so estimated rankings have something
    non-trivial to get right.
    """
    if size < 2:
        raise ConfigurationError("the reference set must contain at least two vertices")
    positive = positive_betweenness_vertices(graph)
    ranked = sorted(positive, key=positive.get, reverse=True)
    if len(ranked) < size:
        raise ConfigurationError(
            f"the graph only has {len(ranked)} vertices with positive betweenness, "
            f"cannot build a reference set of size {size}"
        )
    if size == len(ranked):
        return ranked
    step = (len(ranked) - 1) / (size - 1)
    indices = sorted({round(i * step) for i in range(size)})
    # Rounding collisions can shrink the set; top up with the next unused ranks.
    cursor = 0
    while len(indices) < size:
        if cursor not in indices:
            indices.append(cursor)
        cursor += 1
    return [ranked[i] for i in sorted(indices)[:size]]
