"""Tests for connected-component utilities and the Theorem 2 separator predicates."""

from __future__ import annotations

import pytest

from repro.errors import VertexNotFoundError
from repro.graphs import (
    Graph,
    barbell_graph,
    complete_graph,
    path_graph,
    star_graph,
)
from repro.graphs.components import (
    component_of,
    component_size_profile,
    components_without_vertex,
    connected_components,
    is_balanced_separator,
    is_connected,
    is_vertex_separator,
    largest_connected_component,
)


class TestConnectedComponents:
    def test_single_component(self, path5):
        components = connected_components(path5)
        assert len(components) == 1
        assert components[0] == set(range(5))

    def test_multiple_components(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_vertex(4)
        components = connected_components(g)
        assert sorted(len(c) for c in components) == [1, 2, 2]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_directed_uses_weak_connectivity(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        assert len(connected_components(g)) == 1

    def test_is_connected_true(self, barbell):
        assert is_connected(barbell)

    def test_is_connected_false(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        assert not is_connected(g)

    def test_is_connected_empty_graph(self):
        assert not is_connected(Graph())

    def test_largest_connected_component(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(10, 11)
        largest = largest_connected_component(g)
        assert largest.number_of_vertices() == 3
        assert largest.has_edge(0, 1)

    def test_component_of(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert component_of(g, 0) == {0, 1}
        assert component_of(g, 3) == {2, 3}

    def test_component_of_missing_vertex(self, path5):
        with pytest.raises(VertexNotFoundError):
            component_of(path5, 42)


class TestComponentsWithoutVertex:
    def test_star_center_shatters(self, star6):
        components = components_without_vertex(star6, 0)
        assert len(components) == 6
        assert all(len(c) == 1 for c in components)

    def test_star_leaf_keeps_one_component(self, star6):
        components = components_without_vertex(star6, 1)
        assert len(components) == 1
        assert len(components[0]) == 6

    def test_path_middle(self, path5):
        components = components_without_vertex(path5, 2)
        assert sorted(len(c) for c in components) == [2, 2]

    def test_missing_vertex(self, path5):
        with pytest.raises(VertexNotFoundError):
            components_without_vertex(path5, 42)


class TestSeparators:
    def test_bridge_vertex_is_separator(self, barbell):
        assert is_vertex_separator(barbell, 5)
        assert is_vertex_separator(barbell, 6)

    def test_clique_interior_vertex_is_not_separator(self, barbell):
        assert not is_vertex_separator(barbell, 0)

    def test_complete_graph_has_no_separator(self):
        g = complete_graph(5)
        assert not is_vertex_separator(g, 0)

    def test_tiny_graph_degenerate_case(self):
        g = path_graph(2)
        # Removing either endpoint leaves fewer than two vertices -> separator.
        assert is_vertex_separator(g, 0)

    def test_bridge_is_balanced_separator(self, barbell):
        assert is_balanced_separator(barbell, 5)

    def test_star_center_is_balanced_with_small_fraction(self, star6):
        # Each leaf is a component of size 1 = 1/7 of the graph; with a
        # threshold of 10% the centre qualifies as balanced.
        assert is_balanced_separator(star6, 0, fraction=0.1)

    def test_leaf_is_not_balanced_separator(self, star6):
        assert not is_balanced_separator(star6, 3)

    def test_balanced_fraction_validation(self, star6):
        with pytest.raises(ValueError):
            is_balanced_separator(star6, 0, fraction=0.0)
        with pytest.raises(ValueError):
            is_balanced_separator(star6, 0, fraction=0.9)

    def test_path_middle_is_balanced(self, path5):
        assert is_balanced_separator(path5, 2, fraction=0.25)


class TestComponentSizeProfile:
    def test_barbell_bridge_profile(self, barbell):
        profile = component_size_profile(barbell, 5)
        assert profile["num_components"] == 2.0
        assert profile["largest"] == 6.0  # right clique plus bridge vertex 6
        assert profile["second_largest"] == 5.0

    def test_leaf_profile(self, star6):
        profile = component_size_profile(star6, 1)
        assert profile["num_components"] == 1.0
        assert profile["fraction_outside_largest"] == 0.0
