"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    AlgorithmError,
    ConfigurationError,
    DatasetError,
    EdgeNotFoundError,
    GraphError,
    GraphStructureError,
    NegativeWeightError,
    NotConnectedError,
    ReproError,
    SamplingError,
    VertexNotFoundError,
)


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc_type in (
            GraphError,
            VertexNotFoundError,
            EdgeNotFoundError,
            GraphStructureError,
            NotConnectedError,
            NegativeWeightError,
            AlgorithmError,
            SamplingError,
            ConfigurationError,
            DatasetError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_vertex_not_found_is_key_error(self):
        assert issubclass(VertexNotFoundError, KeyError)

    def test_edge_not_found_is_key_error(self):
        assert issubclass(EdgeNotFoundError, KeyError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_negative_weight_is_value_error(self):
        assert issubclass(NegativeWeightError, ValueError)

    def test_not_connected_is_structure_error(self):
        assert issubclass(NotConnectedError, GraphStructureError)

    def test_sampling_error_is_algorithm_error(self):
        assert issubclass(SamplingError, AlgorithmError)


class TestMessages:
    def test_vertex_not_found_mentions_vertex(self):
        error = VertexNotFoundError("x")
        assert "x" in str(error)
        assert error.vertex == "x"

    def test_edge_not_found_mentions_both_endpoints(self):
        error = EdgeNotFoundError(1, 2)
        assert error.u == 1 and error.v == 2
        assert "1" in str(error) and "2" in str(error)

    def test_negative_weight_records_fields(self):
        error = NegativeWeightError(0, 1, -2.0)
        assert error.weight == -2.0
        assert "positive" in str(error)

    def test_errors_can_be_caught_as_base(self):
        with pytest.raises(ReproError):
            raise SamplingError("degenerate")
