"""Tests for exact single-vertex betweenness, ratios and relative betweenness."""

from __future__ import annotations

import pytest

from repro.exact import (
    betweenness_centrality,
    betweenness_of_vertex,
    betweenness_of_vertices,
    dependency_vector,
    exact_betweenness_ratio,
    exact_relative_betweenness,
    exact_stationary_relative_betweenness,
)
from repro.graphs import barbell_graph, path_graph, star_graph


class TestBetweennessOfVertex:
    def test_matches_full_brandes(self, barbell):
        full = betweenness_centrality(barbell)
        for v in barbell.vertices():
            assert betweenness_of_vertex(barbell, v) == pytest.approx(full[v])

    def test_matches_full_brandes_on_random_graph(self, small_ba):
        full = betweenness_centrality(small_ba)
        for v in list(small_ba.vertices())[:8]:
            assert betweenness_of_vertex(small_ba, v) == pytest.approx(full[v])

    def test_normalization_passthrough(self, star6):
        assert betweenness_of_vertex(star6, 0, normalization="count") == pytest.approx(15.0)

    def test_leaf_is_zero(self, star6):
        assert betweenness_of_vertex(star6, 3) == 0.0

    def test_betweenness_of_vertices(self, path5):
        scores = betweenness_of_vertices(path5, [1, 2])
        full = betweenness_centrality(path5)
        assert scores == {1: pytest.approx(full[1]), 2: pytest.approx(full[2])}


class TestDependencyVector:
    def test_vector_is_nonnegative(self, barbell):
        vector = dependency_vector(barbell, 5)
        assert all(d >= 0.0 for d in vector.values())

    def test_vector_zero_at_target(self, barbell):
        assert dependency_vector(barbell, 5)[5] == 0.0

    def test_star_center_vector(self, star6):
        vector = dependency_vector(star6, 0)
        # every leaf depends on the centre for its 5 other-leaf targets
        assert all(vector[leaf] == pytest.approx(5.0) for leaf in range(1, 7))


class TestRatios:
    def test_ratio_of_equal_vertices(self, barbell):
        assert exact_betweenness_ratio(barbell, 5, 6) == pytest.approx(1.0)

    def test_ratio_reciprocal(self, path5):
        ratio = exact_betweenness_ratio(path5, 1, 2)
        inverse = exact_betweenness_ratio(path5, 2, 1)
        assert ratio * inverse == pytest.approx(1.0)

    def test_ratio_path_values(self, path5):
        assert exact_betweenness_ratio(path5, 1, 2) == pytest.approx(3.0 / 4.0)

    def test_zero_denominator_raises(self, star6):
        with pytest.raises(ZeroDivisionError):
            exact_betweenness_ratio(star6, 0, 1)


class TestRelativeBetweenness:
    def test_self_relative_is_one_on_support(self, barbell):
        # BC_r(r) = (1/n) * |{v : delta_v(r) > 0}| since every ratio is 1.
        value = exact_relative_betweenness(barbell, 5, 5)
        support = sum(1 for d in dependency_vector(barbell, 5).values() if d > 0.0)
        assert value == pytest.approx(support / barbell.number_of_vertices())

    def test_dominated_vertex_smaller_than_dominating(self, path5):
        # vertex 2 (centre) dominates vertex 1
        assert exact_relative_betweenness(path5, 1, 2) <= exact_relative_betweenness(path5, 2, 1)

    def test_bounded_by_one(self, barbell):
        for ri in [0, 5, 6]:
            for rj in [0, 5, 6]:
                value = exact_relative_betweenness(barbell, ri, rj)
                assert 0.0 <= value <= 1.0

    def test_symmetric_bridge_vertices(self, barbell):
        # the two bridge vertices play symmetric roles
        a = exact_relative_betweenness(barbell, 5, 6)
        b = exact_relative_betweenness(barbell, 6, 5)
        assert a == pytest.approx(b)

    def test_zero_betweenness_reference(self, star6):
        # relative score of the centre w.r.t. a leaf: every source with
        # positive dependency on the centre contributes 1.
        value = exact_relative_betweenness(star6, 0, 1)
        assert value == pytest.approx(6.0 / 7.0)

    def test_zero_betweenness_target(self, star6):
        # leaf w.r.t. centre: the leaf has no dependencies at all.
        assert exact_relative_betweenness(star6, 1, 0) == 0.0


class TestStationaryRelativeBetweenness:
    def test_theorem3_ratio_identity_holds_exactly(self, barbell, small_ba):
        # BC(ri)/BC(rj) equals the ratio of the two stationary expectations —
        # the identity Theorem 3 proves via detailed balance.
        from repro.datasets import positive_betweenness_vertices

        for graph in (barbell, small_ba):
            positive = list(positive_betweenness_vertices(graph))
            ri, rj = positive[0], positive[-1]
            lhs = betweenness_of_vertex(graph, ri) / betweenness_of_vertex(graph, rj)
            rhs = exact_stationary_relative_betweenness(
                graph, ri, rj
            ) / exact_stationary_relative_betweenness(graph, rj, ri)
            assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_close_to_equation_23_for_low_mu_reference(self, barbell):
        # The bridge vertex 6 has a nearly flat dependency vector (small µ),
        # so the stationary and uniform (Equation 23) averages nearly agree.
        uniform = exact_relative_betweenness(barbell, 5, 6)
        stationary = exact_stationary_relative_betweenness(barbell, 5, 6)
        assert stationary == pytest.approx(uniform, abs=0.05)

    def test_differs_from_equation_23_for_skewed_dependencies(self, path5):
        # Vertex 1 of the path has a very skewed dependency vector; the two
        # averages must differ, documenting the reproduction finding.
        uniform = exact_relative_betweenness(path5, 1, 2)
        stationary = exact_stationary_relative_betweenness(path5, 1, 2)
        assert abs(uniform - stationary) > 0.05

    def test_bounded_by_one(self, barbell):
        assert 0.0 <= exact_stationary_relative_betweenness(barbell, 0, 5) <= 1.0

    def test_self_value_is_one(self, barbell):
        assert exact_stationary_relative_betweenness(barbell, 5, 5) == pytest.approx(1.0)
