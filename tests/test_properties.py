"""Property-based tests (hypothesis) on the core data structures and invariants.

These complement the example-based tests by checking structural invariants on
randomly generated graphs:

* Graph mutation bookkeeping (vertex/edge counts, symmetry of adjacency);
* SPD invariants (sigma composition, predecessor distances, order sorting);
* Brandes identities (sum of dependencies vs. pair dependencies, equality of
  the per-vertex and all-vertices exact algorithms);
* Metropolis-Hastings invariants (chain stays within the vertex set, the
  estimate is invariant under the seed for fixed chains, bounds formulas).
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exact import betweenness_centrality, betweenness_of_vertex
from repro.graphs import Graph, gnm_random_graph
from repro.graphs.components import connected_components, largest_connected_component
from repro.mcmc import SingleSpaceMHSampler, mcmc_error_probability, required_samples
from repro.shortest_paths import accumulate_dependencies, bfs_spd

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: Random simple graphs as edge sets over a small vertex universe.
edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=11), st.integers(min_value=0, max_value=11)),
    min_size=1,
    max_size=40,
).map(lambda edges: [(u, v) for u, v in edges if u != v])


def build_graph(edges) -> Graph:
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


connected_graphs = (
    edge_lists.map(build_graph)
    .filter(lambda g: g.number_of_vertices() >= 2)
    .map(largest_connected_component)
    .filter(lambda g: g.number_of_vertices() >= 2)
)


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_adjacency_is_symmetric(self, edges):
        graph = build_graph(edges)
        for u in graph.vertices():
            for v in graph.neighbors(u):
                assert graph.has_edge(v, u)

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_edge_count_matches_iteration(self, edges):
        graph = build_graph(edges)
        assert len(list(graph.edges())) == graph.number_of_edges()

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, edges):
        graph = build_graph(edges)
        assert sum(graph.degree(v) for v in graph) == 2 * graph.number_of_edges()

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_removing_all_vertices_empties_graph(self, edges):
        graph = build_graph(edges)
        for v in list(graph.vertices()):
            graph.remove_vertex(v)
        assert graph.number_of_vertices() == 0
        assert graph.number_of_edges() == 0

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_components_partition_vertices(self, edges):
        graph = build_graph(edges)
        components = connected_components(graph)
        union = set()
        total = 0
        for component in components:
            total += len(component)
            union |= component
        assert union == set(graph.vertices())
        assert total == graph.number_of_vertices()

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, edges):
        graph = build_graph(edges)
        copy = graph.copy()
        assert sorted(map(sorted, copy.edges())) == sorted(map(sorted, graph.edges()))


# ----------------------------------------------------------------------
# SPD invariants
# ----------------------------------------------------------------------
class TestSpdProperties:
    @given(connected_graphs)
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_spd_internal_consistency(self, graph):
        source = graph.vertices()[0]
        spd = bfs_spd(graph, source)
        spd.validate()

    @given(connected_graphs)
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_predecessors_are_one_step_closer(self, graph):
        source = graph.vertices()[0]
        spd = bfs_spd(graph, source)
        for v in spd.order:
            for p in spd.parents(v):
                assert spd.distance[p] == spd.distance[v] - 1.0

    @given(connected_graphs)
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_dependencies_are_nonnegative_and_bounded(self, graph):
        source = graph.vertices()[0]
        spd = bfs_spd(graph, source)
        deltas = accumulate_dependencies(spd)
        n = graph.number_of_vertices()
        for v, delta in deltas.items():
            assert delta >= 0.0
            assert delta <= n - 2 + 1e-9  # at most every other target pair

    @given(connected_graphs)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_dependency_equals_sum_of_pair_dependencies(self, graph):
        source = graph.vertices()[0]
        spd = bfs_spd(graph, source)
        deltas = accumulate_dependencies(spd)
        for v in list(graph.vertices())[:4]:
            if v == source:
                continue
            pairwise = sum(spd.pair_dependencies(v).values())
            assert math.isclose(deltas[v], pairwise, rel_tol=1e-9, abs_tol=1e-9)


# ----------------------------------------------------------------------
# Exact betweenness invariants
# ----------------------------------------------------------------------
class TestExactProperties:
    @given(connected_graphs)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_scores_are_in_unit_interval(self, graph):
        scores = betweenness_centrality(graph)
        for score in scores.values():
            assert -1e-12 <= score <= 1.0 + 1e-12

    @given(connected_graphs)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_single_vertex_matches_all_vertices(self, graph):
        scores = betweenness_centrality(graph)
        for v in list(graph.vertices())[:3]:
            assert math.isclose(
                betweenness_of_vertex(graph, v), scores[v], rel_tol=1e-9, abs_tol=1e-12
            )

    @given(connected_graphs)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_degree_one_vertices_have_zero_betweenness(self, graph):
        scores = betweenness_centrality(graph)
        for v in graph.vertices():
            if graph.degree(v) == 1:
                assert scores[v] == 0.0

    @given(st.integers(min_value=4, max_value=12), st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_gnm_betweenness_sum_identity(self, n, seed):
        # Sum of paper-normalised scores equals (average pair dependency
        # mass) and never exceeds the diameter bound n - 1... more simply:
        # the sum over vertices of the ordered-pair dependency counts equals
        # the sum over ordered pairs of (path length - 1) fractions, which is
        # at most (n - 2) per pair.  Checked in the 1/(n(n-1)) scale.
        m = min(n * (n - 1) // 2, n + 2)
        graph = largest_connected_component(gnm_random_graph(n, m, seed=seed))
        if graph.number_of_vertices() < 3:
            return
        scores = betweenness_centrality(graph)
        total = sum(scores.values())
        assert total <= graph.number_of_vertices() - 2 + 1e-9


# ----------------------------------------------------------------------
# MCMC invariants
# ----------------------------------------------------------------------
class TestMcmcProperties:
    @given(connected_graphs, st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_chain_states_stay_in_vertex_set(self, graph, iterations, seed):
        target = graph.vertices()[0]
        chain = SingleSpaceMHSampler().run_chain(graph, target, iterations, seed=seed)
        vertex_set = set(graph.vertices())
        assert all(state.vertex in vertex_set for state in chain.states)
        assert len(chain.states) == iterations + 1

    @given(connected_graphs, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_estimate_is_nonnegative_and_seed_reproducible(self, graph, seed):
        target = graph.vertices()[0]
        sampler = SingleSpaceMHSampler()
        a = sampler.estimate(graph, target, 30, seed=seed).estimate
        b = sampler.estimate(graph, target, 30, seed=seed).estimate
        assert a == b
        assert a >= 0.0

    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=0.01, max_value=0.9),
        st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_required_samples_satisfies_bound(self, epsilon, delta, mu):
        samples = required_samples(epsilon, delta, mu)
        assert samples >= 1
        # the Equation 14 inequality holds at the returned value
        assert samples >= mu * mu / (2 * epsilon * epsilon) * math.log(2 / delta) - 1e-6

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.001, max_value=1.0),
        st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_error_probability_is_a_probability(self, samples, epsilon, mu):
        bound = mcmc_error_probability(samples, epsilon, mu)
        assert 0.0 <= bound <= 1.0
