"""Tests for edge betweenness, group betweenness and co-betweenness."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exact import (
    betweenness_of_vertex,
    co_betweenness_centrality,
    edge_betweenness_centrality,
    greedy_prominent_group,
    group_betweenness_centrality,
    top_edge,
)
from repro.graphs import Graph, barbell_graph, complete_graph, path_graph, star_graph
from repro.graphs.io import to_networkx


class TestEdgeBetweenness:
    def test_path_graph_values(self, path5):
        scores = edge_betweenness_centrality(path5, normalized=False)
        # ordered-pair counts: edge (0,1) carries 2*1*4 = 8
        assert scores[(0, 1)] == pytest.approx(8.0)
        assert scores[(1, 2)] == pytest.approx(12.0)

    def test_matches_networkx(self, small_ba):
        import networkx as nx

        ours = edge_betweenness_centrality(small_ba, normalized=False)
        theirs = nx.edge_betweenness_centrality(to_networkx(small_ba), normalized=False)
        for edge, value in theirs.items():
            key = tuple(sorted(edge))
            assert ours[key] == pytest.approx(2.0 * value)

    def test_every_edge_reported(self, barbell):
        scores = edge_betweenness_centrality(barbell)
        assert len(scores) == barbell.number_of_edges()

    def test_top_edge_is_bridge(self, barbell):
        u, v = top_edge(barbell)
        assert {u, v} == {5, 6}

    def test_top_edge_requires_edges(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(ConfigurationError):
            top_edge(g)

    def test_normalized_scores_bounded(self, barbell):
        scores = edge_betweenness_centrality(barbell, normalized=True)
        assert all(0.0 <= s <= 1.0 for s in scores.values())


class TestGroupBetweenness:
    def test_single_vertex_group_matches_vertex_betweenness(self, barbell):
        group_score = group_betweenness_centrality(barbell, [5])
        assert group_score == pytest.approx(betweenness_of_vertex(barbell, 5))

    def test_bridge_group_closed_form(self, barbell):
        # With both bridge vertices in the group, the remaining pairs that
        # cross the bridge are exactly (left clique) x (right clique):
        # 5 * 5 unordered pairs, 50 ordered, each fully dependent on the group.
        group_score = group_betweenness_centrality(barbell, [5, 6], normalized=False)
        assert group_score == pytest.approx(50.0)

    def test_matches_networkx_group_betweenness(self, small_ba):
        import networkx as nx

        group = [0, 1]
        ours = group_betweenness_centrality(small_ba, group, normalized=False)
        theirs = nx.group_betweenness_centrality(
            to_networkx(small_ba), group, normalized=False
        )
        # networkx counts unordered pairs; ours counts ordered pairs.
        assert ours == pytest.approx(2.0 * theirs, rel=1e-9)

    def test_star_leaves_group_is_zero(self, star6):
        assert group_betweenness_centrality(star6, [1, 2, 3]) == 0.0

    def test_empty_group_rejected(self, star6):
        with pytest.raises(ConfigurationError):
            group_betweenness_centrality(star6, [])

    def test_duplicate_members_collapsed(self, barbell):
        a = group_betweenness_centrality(barbell, [5, 5, 6])
        b = group_betweenness_centrality(barbell, [5, 6])
        assert a == pytest.approx(b)


class TestCoBetweenness:
    def test_pair_on_path(self, path5):
        # pairs of targets whose shortest path contains BOTH 1 and 2: (0,3), (0,4)
        value = co_betweenness_centrality(path5, [1, 2], normalized=False)
        assert value == pytest.approx(4.0)  # ordered pairs

    def test_single_member_equals_betweenness(self, barbell):
        assert co_betweenness_centrality(barbell, [5]) == pytest.approx(
            betweenness_of_vertex(barbell, 5)
        )

    def test_disjoint_star_leaves(self, star6):
        assert co_betweenness_centrality(star6, [1, 2]) == 0.0

    def test_co_betweenness_never_exceeds_group(self, path5):
        group = [1, 3]
        co = co_betweenness_centrality(path5, group)
        grp = group_betweenness_centrality(path5, group)
        assert co <= grp + 1e-12


class TestProminentGroup:
    def test_greedy_picks_bridge_first(self, barbell):
        group = greedy_prominent_group(barbell, 1)
        assert group[0] in (5, 6)

    def test_greedy_group_size(self, path5):
        assert len(greedy_prominent_group(path5, 2)) == 2

    def test_greedy_validation(self, path5):
        with pytest.raises(ConfigurationError):
            greedy_prominent_group(path5, 0)
        with pytest.raises(ConfigurationError):
            greedy_prominent_group(path5, 99)
