"""Tests for the command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main_with_args
from repro.execution.shared_cache import shared_memory_available
from repro.graphs import barbell_graph
from repro.graphs.io import write_edge_list


@pytest.fixture
def barbell_file(tmp_path):
    path = tmp_path / "barbell.edges"
    write_edge_list(barbell_graph(5, 2), path)
    return str(path)


def run_cli(args):
    out = io.StringIO()
    code = main_with_args(args, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_requires_graph_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--vertex", "0"])

    def test_graph_and_dataset_mutually_exclusive(self, barbell_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["estimate", "--graph", barbell_file, "--dataset", "email", "--vertex", "0"]
            )


class TestEstimateCommand:
    def test_estimate_from_file(self, barbell_file):
        code, output = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5", "--samples", "100", "--seed", "1"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["vertex"] == "5"
        assert payload["method"] == "mh-single"
        assert payload["samples"] == 100
        assert payload["estimate"] >= 0.0

    def test_estimate_with_baseline_method(self, barbell_file):
        code, output = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5", "--method", "rk",
             "--samples", "50", "--seed", "1"]
        )
        assert code == 0
        assert json.loads(output)["method"] == "riondato-kornaropoulos"

    def test_estimate_from_dataset(self):
        code, output = run_cli(
            ["estimate", "--dataset", "barbell", "--size", "tiny", "--vertex", "10",
             "--samples", "30", "--seed", "2"]
        )
        assert code == 0
        assert "estimate" in json.loads(output)

    def test_missing_vertex_reports_error(self, barbell_file):
        code, _ = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "999", "--samples", "10"]
        )
        assert code == 2


class TestRelativeCommand:
    def test_relative_from_file(self, barbell_file):
        code, output = run_cli(
            ["relative", "--graph", barbell_file, "--vertices", "5,6,4",
             "--samples", "200", "--seed", "3"]
        )
        assert code == 0
        payload = json.loads(output)
        assert set(payload["reference_set"]) == {"5", "6", "4"}
        assert "5/6" in payload["ratios"]
        assert len(payload["ranking"]) == 3


class TestExactCommand:
    def test_exact_all_vertices(self, barbell_file):
        code, output = run_cli(["exact", "--graph", barbell_file])
        assert code == 0
        payload = json.loads(output)
        assert len(payload) == 12

    def test_exact_top_k(self, barbell_file):
        code, output = run_cli(["exact", "--graph", barbell_file, "--top", "2"])
        payload = json.loads(output)
        assert code == 0
        assert set(payload) == {"5", "6"}

    def test_exact_selected_vertices(self, barbell_file):
        code, output = run_cli(["exact", "--graph", barbell_file, "--vertices", "5,0"])
        payload = json.loads(output)
        assert set(payload) == {"5", "0"}


class TestExecutionFlags:
    """--backend / --jobs / --batch-size wiring into the ExecutionPlan."""

    def test_estimate_with_execution_flags(self, barbell_file):
        code, output = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5", "--method",
             "uniform-source", "--samples", "40", "--seed", "1",
             "--backend", "csr", "--jobs", "2", "--batch-size", "8"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["backend"] == "csr"
        assert payload["jobs"] == 2
        assert payload["batch_size"] == 8

    def test_estimate_jobs_do_not_change_the_estimate(self, barbell_file):
        estimates = []
        for jobs in ("1", "2", "4"):
            code, output = run_cli(
                ["estimate", "--graph", barbell_file, "--vertex", "5", "--method",
                 "uniform-source", "--samples", "40", "--seed", "7", "--jobs", jobs]
            )
            assert code == 0
            estimates.append(json.loads(output)["estimate"])
        assert estimates[0] == estimates[1] == estimates[2]

    def test_exact_with_execution_flags_matches_sequential(self, barbell_file):
        code_seq, out_seq = run_cli(["exact", "--graph", barbell_file])
        code_par, out_par = run_cli(
            ["exact", "--graph", barbell_file, "--jobs", "2", "--batch-size", "4"]
        )
        assert code_seq == code_par == 0
        seq, par = json.loads(out_seq), json.loads(out_par)
        assert seq.keys() == par.keys()
        for v in seq:
            assert par[v] == pytest.approx(seq[v], rel=1e-9, abs=1e-12)

    def test_relative_accepts_execution_flags(self, barbell_file):
        code, output = run_cli(
            ["relative", "--graph", barbell_file, "--vertices", "5,6",
             "--samples", "100", "--seed", "3", "--batch-size", "16"]
        )
        assert code == 0
        assert "5/6" in json.loads(output)["ratios"]

    def test_rejects_non_positive_jobs(self, barbell_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["exact", "--graph", barbell_file, "--jobs", "0"]
            )

    def test_rejects_unknown_backend(self, barbell_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["exact", "--graph", barbell_file, "--backend", "gpu"]
            )


class TestMultiChainFlags:
    """--chains / --rhat / --batch-size auto wiring into the multi-chain driver."""

    def test_estimate_with_chains(self, barbell_file):
        code, output = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5",
             "--samples", "80", "--seed", "1", "--chains", "4"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["method"] == "mh-multichain"
        assert payload["chains"] == 4
        assert payload["rhat"] is not None
        assert payload["ess"] is not None

    def test_estimate_chains_do_not_change_with_jobs(self, barbell_file):
        estimates = []
        for jobs in ("1", "2", "4"):
            code, output = run_cli(
                ["estimate", "--graph", barbell_file, "--vertex", "5",
                 "--samples", "64", "--seed", "7", "--chains", "4", "--jobs", jobs]
            )
            assert code == 0
            estimates.append(json.loads(output)["estimate"])
        assert estimates[0] == estimates[1] == estimates[2]

    def test_estimate_with_rhat_early_stop(self, barbell_file):
        code, output = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5",
             "--samples", "4000", "--seed", "1", "--chains", "4", "--rhat", "1.5"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["converged"] is True
        assert payload["samples"] < 4000

    def test_single_chain_matches_plain_estimate(self, barbell_file):
        base = ["estimate", "--graph", barbell_file, "--vertex", "5",
                "--samples", "60", "--seed", "9"]
        code_a, out_a = run_cli(base)
        code_b, out_b = run_cli(base + ["--chains", "1"])
        assert code_a == code_b == 0
        assert json.loads(out_a)["estimate"] == json.loads(out_b)["estimate"]

    def test_chains_rejected_for_baseline_methods(self, barbell_file):
        code, _ = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5", "--method", "rk",
             "--samples", "20", "--chains", "4"]
        )
        assert code == 2

    @pytest.mark.skipif(
        not shared_memory_available(),
        reason="asserts the arena engaged; platforms without shared memory "
        "fall back to private caches by design",
    )
    def test_estimate_with_shared_cache(self, barbell_file):
        base = ["estimate", "--graph", barbell_file, "--vertex", "5",
                "--samples", "64", "--seed", "7", "--chains", "4", "--jobs", "2"]
        code_a, out_a = run_cli(base)
        code_b, out_b = run_cli(base + ["--shared-cache"])
        assert code_a == code_b == 0
        private, shared = json.loads(out_a), json.loads(out_b)
        assert shared["estimate"] == private["estimate"]
        assert private["shared_cache"] is False and shared["shared_cache"] is True

    def test_shared_cache_rejected_without_chains(self, barbell_file):
        code, _ = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5",
             "--samples", "20", "--shared-cache"]
        )
        assert code == 2

    @pytest.mark.skipif(
        not shared_memory_available(),
        reason="asserts the arena engaged; platforms without shared memory "
        "fall back to private caches by design",
    )
    def test_relative_with_shared_cache(self, barbell_file):
        base = ["relative", "--graph", barbell_file, "--vertices", "5,6,4",
                "--samples", "120", "--seed", "3", "--chains", "2"]
        code_a, out_a = run_cli(base)
        code_b, out_b = run_cli(base + ["--shared-cache"])
        assert code_a == code_b == 0
        private, shared = json.loads(out_a), json.loads(out_b)
        assert shared["ratios"] == private["ratios"]
        assert shared["shared_cache"] is True

    def test_relative_with_chains(self, barbell_file):
        code, output = run_cli(
            ["relative", "--graph", barbell_file, "--vertices", "5,6,4",
             "--samples", "160", "--seed", "3", "--chains", "4"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["chains"] == 4
        assert payload["rhat"] is not None
        assert "5/6" in payload["ratios"]

    def test_batch_size_auto(self, barbell_file):
        code, output = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5",
             "--samples", "40", "--seed", "1", "--batch-size", "auto"]
        )
        assert code == 0
        assert json.loads(output)["batch_size"] >= 1

    def test_rejects_bad_rhat(self, barbell_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["estimate", "--graph", barbell_file, "--vertex", "5", "--rhat", "0.9"]
            )

    def test_rejects_bad_batch_size_string(self, barbell_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["estimate", "--graph", barbell_file, "--vertex", "5",
                 "--batch-size", "fast"]
            )


class TestDatasetsCommand:
    def test_plain_listing(self):
        code, output = run_cli(["datasets"])
        assert code == 0
        assert "email" in output and "barbell" in output

    def test_json_listing(self):
        code, output = run_cli(["datasets", "--json"])
        rows = json.loads(output)
        assert code == 0
        assert any(row["name"] == "road" for row in rows)


class TestBatchCommand:
    """The warm-session JSONL streaming command."""

    def _write_queries(self, tmp_path, queries):
        path = tmp_path / "queries.jsonl"
        path.write_text("".join(json.dumps(q) + "\n" for q in queries))
        return str(path)

    def test_streams_one_json_result_per_line(self, barbell_file, tmp_path):
        queries = [
            {"id": "a", "op": "estimate", "vertex": 5, "samples": 80, "seed": 1},
            {"op": "relative", "vertices": [5, 6, 4], "samples": 100, "seed": 2},
            {"op": "ranking", "k": 2, "samples": 100, "seed": 3},
            {"op": "exact", "top": 2},
        ]
        code, output = run_cli(
            ["batch", "--graph", barbell_file,
             "--queries", self._write_queries(tmp_path, queries)]
        )
        assert code == 0
        records = [json.loads(line) for line in output.splitlines()]
        assert [r["op"] for r in records] == ["estimate", "relative", "ranking", "exact"]
        assert records[0]["id"] == "a"
        assert records[0]["vertex"] == "5"
        assert records[0]["estimate"] >= 0.0
        assert "5/6" in records[1]["ratios"]
        assert len(records[2]["ranking"]) == 2
        assert len(records[3]["scores"]) == 2

    def test_batch_results_match_one_shot_commands(self, barbell_file, tmp_path):
        """One warm session answers exactly what the cold commands answer."""
        code_cold, cold_out = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5",
             "--samples", "80", "--seed", "1", "--jobs", "2"]
        )
        queries = [
            {"op": "estimate", "vertex": 5, "samples": 80, "seed": 1},
            {"op": "estimate", "vertex": 5, "samples": 80, "seed": 1},
        ]
        code, output = run_cli(
            ["batch", "--graph", barbell_file, "--jobs", "2",
             "--queries", self._write_queries(tmp_path, queries)]
        )
        assert code_cold == 0 and code == 0
        cold = json.loads(cold_out)
        first, second = [json.loads(line) for line in output.splitlines()]
        assert first["estimate"] == cold["estimate"]
        assert second["estimate"] == cold["estimate"]

    def test_failing_query_reports_error_and_continues(self, barbell_file, tmp_path):
        queries = [
            {"op": "estimate", "vertex": 5, "samples": 40, "seed": 1},
            {"op": "nope"},
            {"op": "estimate", "vertex": 5, "samples": 40, "seed": 1},
        ]
        code, output = run_cli(
            ["batch", "--graph", barbell_file,
             "--queries", self._write_queries(tmp_path, queries)]
        )
        assert code == 1  # something failed...
        records = [json.loads(line) for line in output.splitlines()]
        assert len(records) == 3  # ...but the stream completed
        assert "error" in records[1]
        assert records[0]["estimate"] == records[2]["estimate"]

    def test_default_chains_apply_to_mcmc_queries_only(self, barbell_file, tmp_path):
        queries = [
            {"op": "estimate", "vertex": 5, "samples": 64, "seed": 1},
            {"op": "estimate", "vertex": 5, "method": "rk", "samples": 30, "seed": 1},
        ]
        code, output = run_cli(
            ["batch", "--graph", barbell_file, "--chains", "2",
             "--queries", self._write_queries(tmp_path, queries)]
        )
        assert code == 0
        mh, rk = [json.loads(line) for line in output.splitlines()]
        assert mh["chains"] == 2
        assert rk["chains"] is None  # baseline untouched by the default

    def test_backend_flag_honoured_without_engaging_the_engine(
        self, barbell_file, tmp_path
    ):
        """--backend dict with no --jobs/--batch-size must run (and stamp)
        the dict backend, bit-identical to the cold sequential command."""
        code_cold, cold_out = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5",
             "--samples", "60", "--seed", "1", "--backend", "dict"]
        )
        queries = [{"op": "estimate", "vertex": 5, "samples": 60, "seed": 1}]
        code, output = run_cli(
            ["batch", "--graph", barbell_file, "--backend", "dict",
             "--queries", self._write_queries(tmp_path, queries)]
        )
        assert code_cold == 0 and code == 0
        cold = json.loads(cold_out)
        warm = json.loads(output)
        assert warm["backend"] == "dict"
        assert warm["estimate"] == cold["estimate"]

    def test_missing_query_file_is_a_clean_cli_error(self, barbell_file, capsys):
        code, _ = run_cli(
            ["batch", "--graph", barbell_file, "--queries", "/nonexistent.jsonl"]
        )
        assert code == 2
        assert "cannot read the query file" in capsys.readouterr().err

    def test_malformed_json_line_reported(self, barbell_file, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text('{"op": "estimate", "vertex": 5}\nnot json\n')
        code, output = run_cli(
            ["batch", "--graph", barbell_file, "--queries", str(path)]
        )
        assert code == 1
        records = [json.loads(line) for line in output.splitlines()]
        assert "error" in records[1]


class TestKernelAndAutoJobs:
    """--kernel wiring and n_jobs='auto' calibration at the CLI."""

    def test_estimate_stamps_the_resolved_kernel(self, barbell_file):
        code, output = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5", "--method",
             "uniform-source", "--samples", "40", "--seed", "1",
             "--backend", "csr", "--kernel", "csr"]
        )
        assert code == 0
        assert json.loads(output)["kernel"] == "csr"

    def test_kernel_never_changes_the_estimate(self, barbell_file):
        estimates = {}
        for kernel in ("auto", "csr", "compiled"):
            code, output = run_cli(
                ["estimate", "--graph", barbell_file, "--vertex", "5", "--method",
                 "uniform-source", "--samples", "40", "--seed", "7",
                 "--backend", "csr", "--kernel", kernel]
            )
            assert code == 0
            payload = json.loads(output)
            estimates[kernel] = payload["estimate"]
            # Whatever was requested, the stamp records a concrete rung.
            assert payload["kernel"] in ("csr", "compiled")
        assert len(set(estimates.values())) == 1

    def test_rejects_unknown_kernel(self, barbell_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["exact", "--graph", barbell_file, "--kernel", "fpga"]
            )

    def test_exact_accepts_the_kernel_flag(self, barbell_file):
        code_csr, out_csr = run_cli(
            ["exact", "--graph", barbell_file, "--kernel", "csr"]
        )
        code_auto, out_auto = run_cli(["exact", "--graph", barbell_file])
        assert code_csr == code_auto == 0
        assert json.loads(out_csr) == json.loads(out_auto)

    def test_jobs_auto_calibrates_without_changing_the_estimate(self, barbell_file):
        code_auto, out_auto = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5", "--method",
             "uniform-source", "--samples", "40", "--seed", "7",
             "--backend", "csr", "--jobs", "auto"]
        )
        code_one, out_one = run_cli(
            ["estimate", "--graph", barbell_file, "--vertex", "5", "--method",
             "uniform-source", "--samples", "40", "--seed", "7",
             "--backend", "csr", "--jobs", "1"]
        )
        assert code_auto == code_one == 0
        auto, one = json.loads(out_auto), json.loads(out_one)
        assert auto["estimate"] == one["estimate"]
        # 'auto' must resolve to a concrete engaged worker count.
        assert auto["jobs"] >= 1

    def test_batch_jobs_auto(self, barbell_file, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text('{"op": "estimate", "vertex": 5, "samples": 40, "seed": 7}\n')
        code, output = run_cli(
            ["batch", "--graph", barbell_file, "--queries", str(path),
             "--jobs", "auto", "--kernel", "csr"]
        )
        assert code == 0
        payload = json.loads(output.splitlines()[0])
        assert payload["kernel"] == "csr"
        assert "error" not in payload

    def test_rejects_bad_jobs_string(self, barbell_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["exact", "--graph", barbell_file, "--jobs", "fast"]
            )
