"""Tests for the high-level one-call API."""

from __future__ import annotations

import pytest

from repro.centrality import (
    SINGLE_VERTEX_METHODS,
    betweenness_exact,
    betweenness_ranking,
    betweenness_single,
    relative_betweenness,
    suggested_chain_length,
)
from repro.errors import ConfigurationError, GraphStructureError
from repro.exact import betweenness_centrality, betweenness_of_vertex
from repro.graphs import Graph, barbell_graph, star_graph


class TestBetweennessSingle:
    @pytest.mark.parametrize("method", sorted(SINGLE_VERTEX_METHODS))
    def test_every_method_runs_and_returns_reasonable_value(self, barbell, method):
        result = betweenness_single(barbell, 5, method=method, samples=150, seed=1)
        assert 0.0 <= result.estimate <= 1.5
        assert result.samples <= 150

    def test_unknown_method(self, barbell):
        with pytest.raises(ConfigurationError):
            betweenness_single(barbell, 5, method="nope")

    def test_disconnected_graph_rejected(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        with pytest.raises(GraphStructureError):
            betweenness_single(g, 0, samples=10)

    def test_disconnected_check_can_be_skipped(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_vertex(5)
        result = betweenness_single(g, 1, samples=20, seed=1, check_connected=False)
        assert result.estimate >= 0.0

    def test_unbiased_method_close_to_exact(self, barbell):
        exact = betweenness_of_vertex(barbell, 5)
        result = betweenness_single(barbell, 5, method="mh-unbiased", samples=800, seed=2)
        assert result.estimate == pytest.approx(exact, abs=0.08)


class TestBetweennessExact:
    def test_all_vertices(self, barbell):
        scores = betweenness_exact(barbell)
        assert scores == betweenness_centrality(barbell)

    def test_selected_vertices(self, barbell):
        scores = betweenness_exact(barbell, [5, 6])
        assert set(scores) == {5, 6}
        assert scores[5] == pytest.approx(betweenness_of_vertex(barbell, 5))

    def test_normalization_forwarded(self, star6):
        scores = betweenness_exact(star6, [0], normalization="count")
        assert scores[0] == pytest.approx(15.0)


class TestRelativeAndRanking:
    def test_relative_betweenness_bundle(self, barbell):
        estimate = relative_betweenness(barbell, [5, 6, 4], samples=600, seed=3)
        assert set(estimate.sample_counts) == {5, 6, 4}
        assert 0.0 <= estimate.acceptance_rate <= 1.0

    def test_relative_requires_connected_graph(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        with pytest.raises(GraphStructureError):
            relative_betweenness(g, [0, 1], samples=10)

    def test_ranking_output(self, barbell):
        outcome = betweenness_ranking(barbell, [5, 4, 0], samples=800, seed=4)
        assert set(outcome) == {"ranking", "estimate", "exact_ranking"}
        assert len(outcome["ranking"]) == 3
        exact_order = outcome["exact_ranking"]()
        # the zero-betweenness clique vertex must be last in both rankings
        assert outcome["ranking"][-1] == exact_order[-1] == 0


class TestSuggestedChainLength:
    def test_fields_and_consistency(self, barbell):
        info = suggested_chain_length(barbell, 5, epsilon=0.05, delta=0.1)
        assert info["mu"] >= 1.0
        assert info["required_samples"] >= 1.0
        assert info["achievable_epsilon_at_required"] <= 0.05 + 1e-9

    def test_smaller_epsilon_needs_more_samples(self, barbell):
        loose = suggested_chain_length(barbell, 5, epsilon=0.1, delta=0.1)
        tight = suggested_chain_length(barbell, 5, epsilon=0.02, delta=0.1)
        assert tight["required_samples"] > loose["required_samples"]
