"""Tests for the high-level one-call API."""

from __future__ import annotations

import pytest

from repro.centrality import (
    SINGLE_VERTEX_METHODS,
    betweenness_exact,
    betweenness_ranking,
    betweenness_single,
    relative_betweenness,
    suggested_chain_length,
)
from repro.errors import ConfigurationError, GraphStructureError
from repro.exact import betweenness_centrality, betweenness_of_vertex
from repro.graphs import Graph, barbell_graph, star_graph


class TestBetweennessSingle:
    @pytest.mark.parametrize("method", sorted(SINGLE_VERTEX_METHODS))
    def test_every_method_runs_and_returns_reasonable_value(self, barbell, method):
        result = betweenness_single(barbell, 5, method=method, samples=150, seed=1)
        assert 0.0 <= result.estimate <= 1.5
        assert result.samples <= 150

    def test_unknown_method(self, barbell):
        with pytest.raises(ConfigurationError):
            betweenness_single(barbell, 5, method="nope")

    def test_disconnected_graph_rejected(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        with pytest.raises(GraphStructureError):
            betweenness_single(g, 0, samples=10)

    def test_disconnected_check_can_be_skipped(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_vertex(5)
        result = betweenness_single(g, 1, samples=20, seed=1, check_connected=False)
        assert result.estimate >= 0.0

    def test_unbiased_method_close_to_exact(self, barbell):
        exact = betweenness_of_vertex(barbell, 5)
        result = betweenness_single(barbell, 5, method="mh-unbiased", samples=800, seed=2)
        assert result.estimate == pytest.approx(exact, abs=0.08)


class TestBetweennessExact:
    def test_all_vertices(self, barbell):
        scores = betweenness_exact(barbell)
        assert scores == betweenness_centrality(barbell)

    def test_selected_vertices(self, barbell):
        scores = betweenness_exact(barbell, [5, 6])
        assert set(scores) == {5, 6}
        assert scores[5] == pytest.approx(betweenness_of_vertex(barbell, 5))

    def test_normalization_forwarded(self, star6):
        scores = betweenness_exact(star6, [0], normalization="count")
        assert scores[0] == pytest.approx(15.0)


class TestRelativeAndRanking:
    def test_relative_betweenness_bundle(self, barbell):
        estimate = relative_betweenness(barbell, [5, 6, 4], samples=600, seed=3)
        assert set(estimate.sample_counts) == {5, 6, 4}
        assert 0.0 <= estimate.acceptance_rate <= 1.0

    def test_relative_requires_connected_graph(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        with pytest.raises(GraphStructureError):
            relative_betweenness(g, [0, 1], samples=10)

    def test_ranking_output(self, barbell):
        outcome = betweenness_ranking(barbell, [5, 4, 0], samples=800, seed=4)
        assert set(outcome) == {"ranking", "estimate", "exact_ranking"}
        assert len(outcome["ranking"]) == 3
        exact_order = outcome["exact_ranking"]()
        # the zero-betweenness clique vertex must be last in both rankings
        assert outcome["ranking"][-1] == exact_order[-1] == 0


class TestMultiChainThreading:
    """n_chains / rhat_target / batch_size='auto' threading through the API."""

    def test_n_chains_engages_the_multichain_driver(self, barbell):
        result = betweenness_single(barbell, 5, method="mh", samples=80, seed=2, n_chains=4)
        assert result.method == "mh-multichain"
        assert result.diagnostics["n_chains"] == 4
        assert "rhat" in result.diagnostics and "ess" in result.diagnostics

    def test_rhat_target_alone_implies_default_chains(self, barbell):
        result = betweenness_single(
            barbell, 5, method="mh", samples=200, seed=2, rhat_target=1.5
        )
        assert result.diagnostics["n_chains"] == 4
        assert result.diagnostics["converged"] in (True, False)

    def test_single_chain_matches_legacy_method(self, barbell):
        legacy = betweenness_single(barbell, 5, method="mh", samples=60, seed=9)
        pooled = betweenness_single(
            barbell, 5, method="mh", samples=60, seed=9, n_chains=1
        )
        assert pooled.estimate == legacy.estimate

    def test_unbiased_variant_supported(self, barbell):
        result = betweenness_single(
            barbell, 5, method="mh-unbiased", samples=60, seed=2, n_chains=2
        )
        assert result.diagnostics["estimator"] == "proposal"

    def test_baselines_reject_chains(self, barbell):
        with pytest.raises(ConfigurationError):
            betweenness_single(barbell, 5, method="rk", samples=20, n_chains=2)
        with pytest.raises(ConfigurationError):
            betweenness_single(barbell, 5, method="kadabra", samples=20, rhat_target=1.1)

    def test_relative_n_chains(self, barbell):
        pooled = relative_betweenness(barbell, [5, 6, 4], samples=200, seed=3, n_chains=4)
        assert pooled.diagnostics["n_chains"] == 4
        single = relative_betweenness(barbell, [5, 6, 4], samples=200, seed=3, n_chains=1)
        legacy = relative_betweenness(barbell, [5, 6, 4], samples=200, seed=3)
        assert single.ratios == legacy.ratios

    def test_auto_batch_size_resolves_before_estimation(self, barbell):
        pytest.importorskip("numpy")
        result = betweenness_single(
            barbell, 5, method="mh", samples=60, seed=2, batch_size="auto"
        )
        # The probe resolves to a concrete positive block size on CSR.
        assert result.diagnostics["batch_size"] >= 1

    def test_auto_batch_size_on_dict_backend_keeps_the_legacy_path(self, barbell):
        """No batch kernels to calibrate -> 'auto' must resolve to None so
        the dict backend walks exactly the legacy sequential chain."""
        auto = betweenness_single(
            barbell, 5, method="mh", samples=60, seed=2, backend="dict",
            batch_size="auto",
        )
        legacy = betweenness_single(
            barbell, 5, method="mh", samples=60, seed=2, backend="dict"
        )
        assert auto.estimate == legacy.estimate
        assert "batch_size" not in auto.diagnostics  # plan never engaged

    def test_auto_batch_size_for_exact(self, barbell):
        auto = betweenness_exact(barbell, [5], batch_size="auto")
        plain = betweenness_exact(barbell, [5])
        assert auto[5] == pytest.approx(plain[5], rel=1e-9)


class TestSuggestedChainLength:
    def test_fields_and_consistency(self, barbell):
        info = suggested_chain_length(barbell, 5, epsilon=0.05, delta=0.1)
        assert info["mu"] >= 1.0
        assert info["required_samples"] >= 1.0
        assert info["achievable_epsilon_at_required"] <= 0.05 + 1e-9

    def test_smaller_epsilon_needs_more_samples(self, barbell):
        loose = suggested_chain_length(barbell, 5, epsilon=0.1, delta=0.1)
        tight = suggested_chain_length(barbell, 5, epsilon=0.02, delta=0.1)
        assert tight["required_samples"] > loose["required_samples"]
