"""Tests for the core Graph data structure."""

from __future__ import annotations

import pytest

from repro.errors import (
    EdgeNotFoundError,
    GraphStructureError,
    NegativeWeightError,
    VertexNotFoundError,
)
from repro.graphs import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.number_of_vertices() == 0
        assert g.number_of_edges() == 0
        assert len(g) == 0
        assert list(g) == []

    def test_add_vertex(self):
        g = Graph()
        g.add_vertex("a")
        assert "a" in g
        assert g.number_of_vertices() == 1

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.number_of_vertices() == 1

    def test_add_vertices_from(self):
        g = Graph()
        g.add_vertices_from(range(5))
        assert g.number_of_vertices() == 5

    def test_add_edge_adds_endpoints(self):
        g = Graph()
        g.add_edge(0, 1)
        assert g.has_vertex(0) and g.has_vertex(1)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.number_of_edges() == 1

    def test_add_edges_from_pairs_and_triples(self):
        g = Graph(weighted=True)
        g.add_edges_from([(0, 1), (1, 2, 3.5)])
        assert g.edge_weight(1, 2) == 3.5
        assert g.edge_weight(0, 1) == 1.0

    def test_add_edges_from_bad_tuple(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edges_from([(0, 1, 2, 3)])

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphStructureError):
            g.add_edge(3, 3)

    def test_readding_edge_does_not_duplicate(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.number_of_edges() == 1

    def test_unweighted_forces_unit_weight(self):
        g = Graph()
        g.add_edge(0, 1, weight=7.0)
        assert g.edge_weight(0, 1) == 1.0

    def test_weighted_keeps_weight(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, weight=7.0)
        assert g.edge_weight(0, 1) == 7.0

    def test_weighted_rejects_nonpositive(self):
        g = Graph(weighted=True)
        with pytest.raises(NegativeWeightError):
            g.add_edge(0, 1, weight=0.0)
        with pytest.raises(NegativeWeightError):
            g.add_edge(0, 1, weight=-1.0)

    def test_hashable_vertex_labels(self):
        g = Graph()
        g.add_edge("alice", ("tuple", 1))
        assert g.has_edge("alice", ("tuple", 1))


class TestRemoval:
    def test_remove_edge(self):
        g = Graph()
        g.add_edge(0, 1)
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.number_of_edges() == 0
        assert g.has_vertex(0) and g.has_vertex(1)

    def test_remove_missing_edge_raises(self):
        g = Graph()
        g.add_edge(0, 1)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_remove_vertex_removes_incident_edges(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        g.remove_vertex(0)
        assert g.number_of_vertices() == 2
        assert g.number_of_edges() == 1
        assert g.has_edge(1, 2)

    def test_remove_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(99)


class TestQueries:
    def test_neighbors(self, star6):
        assert sorted(star6.neighbors(0)) == [1, 2, 3, 4, 5, 6]
        assert list(star6.neighbors(3)) == [0]

    def test_neighbors_missing_vertex(self, star6):
        with pytest.raises(VertexNotFoundError):
            list(star6.neighbors(99))

    def test_degree(self, star6):
        assert star6.degree(0) == 6
        assert star6.degree(1) == 1

    def test_degree_sequence(self, star6):
        assert star6.degree_sequence() == [6, 1, 1, 1, 1, 1, 1]

    def test_edges_iteration_counts_each_edge_once(self, barbell):
        edges = list(barbell.edges())
        assert len(edges) == barbell.number_of_edges()
        seen = {frozenset(e) for e in edges}
        assert len(seen) == len(edges)

    def test_edges_with_data(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, 2.5)
        assert list(g.edges(data=True)) == [(0, 1, 2.5)]

    def test_adjacency_returns_copy(self):
        g = Graph()
        g.add_edge(0, 1)
        adj = g.adjacency(0)
        adj[99] = 1.0
        assert not g.has_edge(0, 99)

    def test_edge_weight_missing(self):
        g = Graph()
        g.add_edge(0, 1)
        with pytest.raises(EdgeNotFoundError):
            g.edge_weight(0, 2)

    def test_repr_contains_counts(self, path5):
        text = repr(path5)
        assert "5 vertices" in text and "4 edges" in text


class TestDirected:
    def test_directed_edges_are_ordered(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_predecessors(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        assert sorted(g.predecessors(1)) == [0, 2]
        assert list(g.predecessors(0)) == []

    def test_in_degree(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        assert g.in_degree(1) == 2
        assert g.degree(1) == 0

    def test_remove_vertex_directed(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        g.remove_vertex(1)
        assert g.number_of_edges() == 1
        assert g.has_edge(2, 0)

    def test_to_undirected(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        und = g.to_undirected()
        assert not und.directed
        assert und.has_edge(1, 0)

    def test_require_undirected(self):
        g = Graph(directed=True)
        with pytest.raises(GraphStructureError):
            g.require_undirected()


class TestDerivedGraphs:
    def test_copy_is_independent(self, path5):
        copy = path5.copy()
        copy.add_edge(0, 4)
        assert not path5.has_edge(0, 4)
        assert copy.number_of_edges() == path5.number_of_edges() + 1

    def test_copy_preserves_weights(self, weighted_diamond):
        copy = weighted_diamond.copy()
        assert copy.weighted
        assert copy.edge_weight(0, 4) == 0.5

    def test_subgraph(self, barbell):
        sub = barbell.subgraph(range(5))
        assert sub.number_of_vertices() == 5
        assert sub.number_of_edges() == 10  # K5

    def test_subgraph_ignores_unknown_vertices(self, path5):
        sub = path5.subgraph([0, 1, 99])
        assert sub.number_of_vertices() == 2

    def test_without_vertex(self, star6):
        reduced = star6.without_vertex(0)
        assert reduced.number_of_vertices() == 6
        assert reduced.number_of_edges() == 0

    def test_without_missing_vertex_raises(self, star6):
        with pytest.raises(VertexNotFoundError):
            star6.without_vertex(42)

    def test_relabelled(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        new, mapping = g.relabelled()
        assert sorted(new.vertices()) == [0, 1, 2]
        assert new.has_edge(mapping["a"], mapping["b"])
        assert new.number_of_edges() == 2
