"""Tests for the ``repro-bc serve`` HTTP daemon (:mod:`repro.serving`).

Four contract families:

* **Concurrency harness** — a real daemon on an ephemeral port, hammered by
  threads issuing byte-identical and distinct queries concurrently.
  Byte-identical requests coalesce onto one computation and share one
  rendered response (the bodies are literally the same bytes), the
  coalesce-hit counters match the duplicate count exactly, and every served
  answer equals the sequential cold-API answer at the same seed.
* **Fault injection** — the session worker pool killed and respawned
  mid-request, graph mutations racing concurrent queries, overload and
  deadline behaviour.  The daemon's promise: structured errors with correct
  status codes, never a hang, never a stale ``graph_version`` receipt.
* **Prometheus text properties** — hypothesis-driven checks that
  ``/metrics`` output is well-formed exposition text, histogram buckets are
  cumulative-monotone, and counters never decrease.
* **Stamp parity** — the execution stamp emitted by ``repro-bc estimate``,
  ``repro-bc batch`` and the serve daemon is the same mapping from the same
  helper (:mod:`repro.execution.stamp`), pinned value-by-value so the
  surfaces cannot drift.
"""

from __future__ import annotations

import http.client
import io
import json
import math
import re
import threading
import time
from types import SimpleNamespace

import pytest

from repro.centrality.session import BetweennessSession
from repro.execution import resolve_plan
from repro.execution.stamp import (
    EXECUTION_STAMP_KEYS,
    execution_stamp,
    format_stamp_lines,
)
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np
from repro.serving import ServingApp, ServingConfig, create_server
from repro.serving.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serving.queries import execute_query

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the test image
    HAVE_HYPOTHESIS = False

needs_numpy = pytest.mark.skipif(np is None, reason="the csr backend needs numpy")
needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="property tests need hypothesis"
)

SEED = 3


def small_graph():
    """The 40-vertex scale-free graph most tests serve (BA graphs are connected)."""
    return barabasi_albert_graph(40, 2, seed=SEED)


def served_graph():
    """The same graph rebuilt through the serving load path (edge list).

    Cold comparisons must construct the graph exactly as the daemon does —
    vertex insertion order feeds the CSR index order the samplers run over.
    """
    from repro.graphs.core import Graph

    return Graph.from_edges(list(small_graph().edges()))


def make_app(**config_kwargs) -> ServingApp:
    config_kwargs.setdefault("backend", "csr")
    config_kwargs.setdefault("kernel", "csr")
    config_kwargs.setdefault("request_timeout", 30.0)
    return ServingApp(config=ServingConfig(**config_kwargs))


def load_graph(app: ServingApp, name: str = "g", graph=None) -> int:
    """Load a graph into *app* through the HTTP surface; return its version."""
    graph = graph if graph is not None else small_graph()
    edges = [[u, v] for u, v in graph.edges()]
    response = app.dispatch(
        "PUT", f"/graphs/{name}", json.dumps({"edges": edges}).encode()
    )
    assert response.status == 200, response.body
    return json.loads(response.body)["loaded"]["graph_version"]


def body_of(response) -> dict:
    return json.loads(response.body)


def stable(payload: dict) -> dict:
    """Drop the timing-dependent fields so payloads compare deterministically."""
    clean = {
        k: v
        for k, v in payload.items()
        if k not in ("elapsed_seconds", "op", "line", "id")
    }
    receipt = clean.pop("receipt", None)
    if receipt is not None:
        clean["receipt"] = {
            k: v for k, v in receipt.items() if k != "server_seconds"
        }
    return clean


def cold_answer(query: dict, op: str) -> dict:
    """The cold per-call API answer for one serve query (fresh session)."""
    with BetweennessSession(served_graph(), None, backend="csr") as session:
        payload = execute_query(
            session, dict(query, op=op), kernel="csr", kernel_threads=1
        )
    return stable(payload)


#: The mixed workload the concurrency tests and the benchmark share in
#: spirit: estimates on distinct vertices/seeds plus set queries.
WORKLOAD = (
    ("estimate", {"vertex": 0, "samples": 40, "seed": 7}),
    ("estimate", {"vertex": 5, "samples": 40, "seed": 11}),
    ("relative", {"vertices": [0, 5, 9], "samples": 60, "seed": 5}),
    ("ranking", {"vertices": [0, 5, 9, 13], "samples": 60, "seed": 9}),
)


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------


def http_request(host, port, method, path, body=b"", timeout=30.0):
    """One HTTP exchange; returns ``(status, headers dict, body bytes)``."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


@pytest.fixture
def daemon():
    """A live daemon on an ephemeral port, torn down after the test."""
    app = make_app()
    server = create_server("127.0.0.1", 0, app=app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield SimpleNamespace(app=app, host=host, port=port)
    server.close()
    thread.join(timeout=10)


# ----------------------------------------------------------------------
# Route basics (transport-free dispatch)
# ----------------------------------------------------------------------


@needs_numpy
class TestDispatchBasics:
    def test_healthz_reports_loaded_graphs(self):
        app = make_app()
        try:
            load_graph(app, "alpha")
            payload = body_of(app.dispatch("GET", "/healthz"))
            assert payload["status"] == "ok"
            assert payload["graphs"] == ["alpha"]
        finally:
            app.close()

    def test_lifecycle_load_describe_evict(self):
        app = make_app()
        try:
            load_graph(app, "g")
            described = body_of(app.dispatch("GET", "/graphs/g"))
            assert described["vertices"] == 40
            assert described["queries"] == 0
            listed = body_of(app.dispatch("GET", "/graphs"))
            assert [row["graph"] for row in listed["graphs"]] == ["g"]
            evicted = body_of(app.dispatch("DELETE", "/graphs/g"))
            assert evicted["evicted"]["graph"] == "g"
            assert app.dispatch("GET", "/graphs/g").status == 404
        finally:
            app.close()

    def test_query_matches_cold_api(self):
        app = make_app()
        try:
            load_graph(app)
            for op, query in WORKLOAD:
                response = app.dispatch(
                    "POST", f"/graphs/g/{op}", json.dumps(query).encode()
                )
                assert response.status == 200, response.body
                served = stable(body_of(response))
                expected = cold_answer(query, op)
                assert {k: served[k] for k in expected} == expected, op
        finally:
            app.close()

    def test_structured_errors(self):
        app = make_app(max_sessions=1)
        try:
            # Unknown graph: 404 with the error envelope.
            response = app.dispatch("POST", "/graphs/nope/estimate", b"{}")
            assert response.status == 404
            assert body_of(response)["error"]["type"] == "graph_not_loaded"
            # Unknown route/op: 404.
            load_graph(app, "g")
            assert app.dispatch("POST", "/graphs/g/frobnicate", b"{}").status == 404
            # Malformed body: 400.
            response = app.dispatch("POST", "/graphs/g/estimate", b"{not json")
            assert response.status == 400
            assert body_of(response)["error"]["type"] == "bad_request"
            # Op mismatch between body and endpoint: 400.
            response = app.dispatch(
                "POST", "/graphs/g/estimate", b'{"op": "exact"}'
            )
            assert response.status == 400
            # Registry full: 409.
            response = app.dispatch(
                "PUT", "/graphs/other", b'{"edges": [[0, 1], [1, 2], [0, 2]]}'
            )
            assert response.status == 409
            assert body_of(response)["error"]["type"] == "registry_full"
        finally:
            app.close()

    def test_metrics_endpoint_scrapes(self):
        app = make_app()
        try:
            load_graph(app)
            app.dispatch(
                "POST", "/graphs/g/estimate", b'{"vertex": 0, "samples": 40, "seed": 7}'
            )
            response = app.dispatch("GET", "/metrics")
            assert response.status == 200
            assert response.content_type.startswith("text/plain")
            text = response.body.decode()
            assert 'repro_requests_total{endpoint="estimate",status="200"} 1' in text
            assert 'repro_brandes_passes_total{graph="g"}' in text
            assert "repro_request_seconds_bucket" in text
        finally:
            app.close()


# ----------------------------------------------------------------------
# Satellite 1: the concurrency harness
# ----------------------------------------------------------------------


def fire_concurrently(thunks):
    """Run the thunks on one thread each; return results in thunk order."""
    results = [None] * len(thunks)
    errors = []

    def runner(index, thunk):
        try:
            results[index] = thunk()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i, thunk), daemon=True)
        for i, thunk in enumerate(thunks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "a request hung"
    if errors:
        raise errors[0]
    return results


@needs_numpy
class TestConcurrencyHarness:
    N_DUPLICATES = 6

    def test_identical_requests_coalesce_byte_identically(self, daemon):
        load_graph(daemon.app)
        query_bytes = json.dumps({"vertex": 0, "samples": 40, "seed": 7}).encode()

        followers = self.N_DUPLICATES - 1

        def hold_until_followers_joined(key):
            deadline = time.monotonic() + 15
            while (
                daemon.app.coalescer.waiters(key) < followers
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)

        daemon.app.before_compute = hold_until_followers_joined
        try:
            responses = fire_concurrently(
                [
                    lambda: http_request(
                        daemon.host,
                        daemon.port,
                        "POST",
                        "/graphs/g/estimate",
                        query_bytes,
                    )
                ]
                * self.N_DUPLICATES
            )
        finally:
            daemon.app.before_compute = None

        statuses = [status for status, _, _ in responses]
        assert statuses == [200] * self.N_DUPLICATES
        bodies = {raw for _, _, raw in responses}
        assert len(bodies) == 1, "coalesced responses must be byte-identical"
        flags = sorted(
            headers["X-Repro-Coalesced"] for _, headers, _ in responses
        )
        assert flags == ["0"] + ["1"] * followers

        # The counters match the duplicate count exactly: one computation,
        # N-1 coalesce hits, visible both on the coalescer and in /metrics.
        assert daemon.app.coalescer.computations == 1
        assert daemon.app.coalescer.coalesce_hits == followers
        assert daemon.app.coalesce_hits.value() == followers
        assert daemon.app.coalesce_misses.value() == 1

        # And the one shared answer is the cold per-call API answer.
        served = stable(json.loads(bodies.pop()))
        expected = cold_answer({"vertex": 0, "samples": 40, "seed": 7}, "estimate")
        assert {k: served[k] for k in expected} == expected

    def test_mixed_concurrent_workload_matches_sequential_cold(self, daemon):
        load_graph(daemon.app)
        repeats = 3
        requests = [
            (op, query, json.dumps(query, sort_keys=True).encode())
            for op, query in WORKLOAD
            for _ in range(repeats)
        ]
        responses = fire_concurrently(
            [
                lambda op=op, raw=raw: http_request(
                    daemon.host, daemon.port, "POST", f"/graphs/g/{op}", raw
                )
                for op, _, raw in requests
            ]
        )
        assert [status for status, _, _ in responses] == [200] * len(requests)
        for (op, query, _), (_, _, raw) in zip(requests, responses):
            served = stable(json.loads(raw))
            expected = cold_answer(query, op)
            assert {k: served[k] for k in expected} == expected, op

    def test_duplicate_streams_count_in_metrics(self, daemon):
        """Counters add up: requests == computations + hits + rejections."""
        load_graph(daemon.app)
        query_bytes = json.dumps({"vertex": 5, "samples": 40, "seed": 2}).encode()
        for _ in range(3):
            status, _, _ = http_request(
                daemon.host, daemon.port, "POST", "/graphs/g/estimate", query_bytes
            )
            assert status == 200
        app = daemon.app
        total_queries = app.coalesce_hits.value() + app.coalesce_misses.value()
        assert total_queries == 3
        assert (
            app.coalescer.computations + app.coalescer.coalesce_hits == total_queries
        )


# ----------------------------------------------------------------------
# Satellite 2: fault injection
# ----------------------------------------------------------------------


@needs_numpy
class TestFaultInjection:
    def _pooled_app(self):
        """An app whose sessions run a 2-worker persistent pool.

        The graph must exceed one shard (256 sources) for the scheduler to
        engage the pool at all.
        """
        plan = resolve_plan(None, backend="csr", batch_size=16, n_jobs=2, kernel="csr")
        config = ServingConfig(backend="csr", kernel="csr", request_timeout=30.0)
        app = ServingApp(plan=plan, config=config)
        load_graph(app, "g", barabasi_albert_graph(600, 2, seed=SEED))
        return app

    def test_pool_killed_and_respawned_between_requests(self):
        app = self._pooled_app()
        try:
            first = app.dispatch("POST", "/graphs/g/exact", b"{}")
            assert first.status == 200
            context = app.registry.get("g").session.session._context
            assert context._pool is not None, "the workload must engage the pool"

            # Kill: tear the worker pool down outright.  Respawn: the next
            # query lazily rebuilds it (worker_pool() semantics).
            context._pool.close()
            context._pool = None

            second = app.dispatch("POST", "/graphs/g/exact", b"{}")
            assert second.status == 200
            assert body_of(second)["scores"] == body_of(first)["scores"]
            assert context._pool is not None, "the pool must respawn"
        finally:
            app.close()

    def test_pool_breaks_mid_request_and_degrades_inline(self, monkeypatch):
        """A worker death mid-request (the install/barrier protocol reports
        it as RuntimeError) degrades to inline execution: same answer, no
        hang, and the broken pool is torn down for good."""
        app = self._pooled_app()
        try:
            first = app.dispatch("POST", "/graphs/g/exact", b"{}")
            assert first.status == 200
            context = app.registry.get("g").session.session._context
            pool = context._pool
            assert pool is not None

            monkeypatch.setattr(
                pool.__class__,
                "run",
                lambda self, fn, shards, payload: (_ for _ in ()).throw(
                    RuntimeError("injected worker death")
                ),
            )
            with pytest.warns(RuntimeWarning, match="falls back"):
                second = app.dispatch("POST", "/graphs/g/exact", b"{}")
            assert second.status == 200
            assert body_of(second)["scores"] == body_of(first)["scores"]
            assert context.stats()["pool_active"] is False

            # Later queries keep answering (inline) without re-warning.
            monkeypatch.undo()
            third = app.dispatch(
                "POST", "/graphs/g/estimate", b'{"vertex": 0, "samples": 40, "seed": 7}'
            )
            assert third.status == 200
        finally:
            app.close()

    def test_mutation_mid_flight_never_yields_stale_receipt(self):
        """A query that computes *after* a racing mutation must stamp the
        post-mutation version, even though it was admitted before it."""
        app = make_app()
        try:
            v0 = load_graph(app)
            gate = threading.Event()
            app.before_compute = lambda key: gate.wait(timeout=30)

            query_bytes = b'{"vertex": 0, "samples": 40, "seed": 7}'
            slot = {}

            def query():
                slot["response"] = app.dispatch(
                    "POST", "/graphs/g/estimate", query_bytes
                )

            thread = threading.Thread(target=query, daemon=True)
            thread.start()
            deadline = time.monotonic() + 15
            while app.coalescer.inflight_count() < 1 and time.monotonic() < deadline:
                time.sleep(0.002)
            assert app.coalescer.inflight_count() == 1

            # The mutation completes while the query is gated pre-lock.
            app.before_compute = None
            mutated = app.dispatch(
                "POST", "/graphs/g/mutate", b'{"add_edges": [[0, 39]]}'
            )
            assert mutated.status == 200
            v1 = body_of(mutated)["mutated"]["graph_version"]
            assert v1 > v0

            gate.set()
            thread.join(timeout=60)
            assert not thread.is_alive(), "the gated query hung"
            response = slot["response"]
            assert response.status == 200
            receipt = body_of(response)["receipt"]
            assert receipt["graph_version"] == v1, "stale version receipt"

            # And the answer equals a cold answer against the mutated graph.
            post = app.dispatch("POST", "/graphs/g/estimate", query_bytes)
            assert body_of(post)["estimate"] == body_of(response)["estimate"]
        finally:
            app.before_compute = None
            app.close()

    def test_overload_answers_429_with_retry_after(self):
        app = make_app(max_inflight=1, retry_after=2.5)
        try:
            load_graph(app)
            gate = threading.Event()
            app.before_compute = lambda key: gate.wait(timeout=30)

            def held_query():
                return app.dispatch(
                    "POST", "/graphs/g/estimate", b'{"vertex": 0, "samples": 40}'
                )

            thread_result = {}
            thread = threading.Thread(
                target=lambda: thread_result.update(r=held_query()), daemon=True
            )
            thread.start()
            deadline = time.monotonic() + 15
            while app.coalescer.inflight_count() < 1 and time.monotonic() < deadline:
                time.sleep(0.002)

            # A *distinct* query now exceeds the admission bound...
            rejected = app.dispatch(
                "POST", "/graphs/g/estimate", b'{"vertex": 5, "samples": 40}'
            )
            assert rejected.status == 429
            assert dict(rejected.headers)["Retry-After"] == "2.5"
            assert body_of(rejected)["error"]["type"] == "overloaded"
            # ...while a byte-identical duplicate still coalesces in.
            app.before_compute = None
            gate.set()
            duplicate = app.dispatch(
                "POST", "/graphs/g/estimate", b'{"vertex": 0, "samples": 40}'
            )
            thread.join(timeout=60)
            assert thread_result["r"].status == 200
            assert duplicate.status in (200,)
            assert app.admission_rejections.value() == 1
            assert app.coalescer.rejections == 1
        finally:
            app.before_compute = None
            app.close()

    def test_deadline_expiry_answers_504_and_recovers(self):
        app = make_app(request_timeout=0.3)
        try:
            load_graph(app)
            gate = threading.Event()
            app.before_compute = lambda key: gate.wait(timeout=30)
            response = app.dispatch(
                "POST", "/graphs/g/estimate", b'{"vertex": 0, "samples": 40, "seed": 7}'
            )
            assert response.status == 504
            assert body_of(response)["error"]["type"] == "timeout"
            assert app.request_timeouts.value() == 1

            # Graceful cancellation: the abandoned computation finishes in
            # the background and drains from the in-flight table.
            app.before_compute = None
            gate.set()
            deadline = time.monotonic() + 30
            while app.coalescer.inflight_count() > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert app.coalescer.inflight_count() == 0

            # The daemon recovers: the same query now answers fine.
            retry = app.dispatch(
                "POST", "/graphs/g/estimate", b'{"vertex": 0, "samples": 40, "seed": 7}'
            )
            assert retry.status == 200
        finally:
            app.before_compute = None
            app.close()

    def test_query_failure_propagates_to_every_coalesced_waiter(self, daemon):
        load_graph(daemon.app)
        bad = json.dumps({"vertex": "no-such-vertex", "samples": 40}).encode()

        def hold(key):
            deadline = time.monotonic() + 15
            while (
                daemon.app.coalescer.waiters(key) < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)

        daemon.app.before_compute = hold
        try:
            responses = fire_concurrently(
                [
                    lambda: http_request(
                        daemon.host, daemon.port, "POST", "/graphs/g/estimate", bad
                    )
                ]
                * 3
            )
        finally:
            daemon.app.before_compute = None
        assert [status for status, _, _ in responses] == [400] * 3
        for _, _, raw in responses:
            assert json.loads(raw)["error"]["type"] == "bad_request"


class TestMutateReceipts:
    """Mutate responses carry the invalidation receipt of the warm state."""

    def test_mutate_response_carries_invalidation_receipt(self):
        app = make_app()
        try:
            v0 = load_graph(app)
            # Warm the session first so the receipt has state to account for.
            warm = app.dispatch(
                "POST", "/graphs/g/estimate", b'{"vertex": 0, "samples": 40, "seed": 7}'
            )
            assert warm.status == 200
            mutated = app.dispatch(
                "POST", "/graphs/g/mutate", b'{"add_edges": [[0, 39]]}'
            )
            assert mutated.status == 200
            summary = body_of(mutated)["mutated"]
            assert summary["graph_version"] == v0 + 1
            assert summary["version_changed"] is True
            receipt = summary["invalidation"]
            assert receipt["mode"] in ("delta", "full")
            assert receipt["version_from"] == v0
            assert receipt["version_to"] == v0 + 1
        finally:
            app.close()

    def test_noop_mutation_reports_version_unchanged(self):
        app = make_app()
        try:
            v0 = load_graph(app)
            first = app.dispatch(
                "POST", "/graphs/g/mutate", b'{"add_edges": [[0, 39]]}'
            )
            assert body_of(first)["mutated"]["version_changed"] is True
            repeat = app.dispatch(
                "POST", "/graphs/g/mutate", b'{"add_edges": [[0, 39]]}'
            )
            assert repeat.status == 200
            summary = body_of(repeat)["mutated"]
            assert summary["version_changed"] is False
            assert summary["graph_version"] == v0 + 1
            assert summary["invalidation"]["mode"] == "noop"
        finally:
            app.close()

    def test_batched_mutation_is_one_version_bump(self):
        app = make_app()
        try:
            v0 = load_graph(app)
            mutated = app.dispatch(
                "POST",
                "/graphs/g/mutate",
                b'{"add_edges": [[0, 38], [0, 39], [1, 37]], '
                b'"remove_edges": [[0, 1]]}',
            )
            assert mutated.status == 200
            summary = body_of(mutated)["mutated"]
            assert summary["graph_version"] == v0 + 1
            assert summary["edges_added"] + summary["edges_removed"] >= 2
        finally:
            app.close()

    def test_metrics_expose_invalidation_series_after_warm_mutate(self):
        app = make_app()
        try:
            load_graph(app)
            warm = app.dispatch(
                "POST", "/graphs/g/estimate", b'{"vertex": 0, "samples": 40, "seed": 7}'
            )
            assert warm.status == 200
            mutated = app.dispatch(
                "POST", "/graphs/g/mutate", b'{"add_edges": [[0, 39]]}'
            )
            assert mutated.status == 200
            receipt = body_of(mutated)["mutated"]["invalidation"]
            text = app.dispatch("GET", "/metrics", b"").body.decode()
            mode = receipt["mode"]
            assert f'repro_invalidations_total{{graph="g",mode="{mode}"}} 1' in text
            if mode == "delta":
                assert (
                    f'repro_invalidation_arena_rows_retained{{graph="g"}} '
                    f'{receipt["arena_rows_retained"]}' in text
                )
        finally:
            app.close()


# ----------------------------------------------------------------------
# Satellite 3: Prometheus text properties
# ----------------------------------------------------------------------

_COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*\})?'
    r" (NaN|[+-]Inf|-?\d+(\.\d+)?([eE][+-]?\d+)?)$"
)


def assert_well_formed(text: str) -> None:
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        assert _COMMENT_RE.match(line) or _SAMPLE_RE.match(line), line


def parse_samples(text: str):
    """Parse exposition text into ``{(name, labels-frozenset): value}``."""
    samples = {}
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("#"):
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (.+)$", line)
        assert match, line
        name, labels, raw = match.groups()
        value = {"NaN": math.nan, "+Inf": math.inf, "-Inf": -math.inf}.get(
            raw, None
        )
        samples[(name, labels or "")] = float(raw) if value is None else value
    return samples


@needs_hypothesis
class TestMetricsProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["inc", "observe", "set"]),
                st.floats(
                    min_value=0.0, max_value=50.0, allow_nan=False
                ),
                st.text(min_size=0, max_size=12),
            ),
            max_size=30,
        )
    )
    def test_render_is_well_formed_exposition_text(self, ops):
        registry = MetricsRegistry()
        counter = registry.counter("t_counter", "a counter", ("label",))
        gauge = registry.gauge("t_gauge", "a gauge")
        histogram = registry.histogram("t_histogram", "a histogram")
        for op, value, label in ops:
            if op == "inc":
                counter.inc(value, label=label)
            elif op == "observe":
                histogram.observe(value)
            else:
                gauge.set(value)
        assert_well_formed(registry.render())

    @settings(max_examples=50, deadline=None)
    @given(
        observations=st.lists(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
            max_size=50,
        )
    )
    def test_histogram_buckets_are_cumulative_monotone(self, observations):
        histogram = Histogram("t_hist", "h")
        for value in observations:
            histogram.observe(value)
        lines = histogram.sample_lines()
        bucket_values = [
            float(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("t_hist_bucket")
        ]
        assert len(bucket_values) == len(DEFAULT_BUCKETS) + 1  # finite + +Inf
        assert bucket_values == sorted(bucket_values), "buckets must be cumulative"
        assert bucket_values[-1] == len(observations)  # +Inf == _count
        count = float(
            next(line for line in lines if line.startswith("t_hist_count")).rsplit(
                " ", 1
            )[1]
        )
        assert count == len(observations)
        total = float(
            next(line for line in lines if line.startswith("t_hist_sum")).rsplit(
                " ", 1
            )[1]
        )
        assert total == pytest.approx(sum(observations))

    @settings(max_examples=50, deadline=None)
    @given(
        increments=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            max_size=40,
        )
    )
    def test_counters_never_decrease(self, increments):
        counter = Counter("t_total", "c")
        previous = counter.value()
        for amount in increments:
            counter.inc(amount)
            current = counter.value()
            assert current >= previous
            previous = current
        with pytest.raises(ValueError):
            counter.inc(-1.0)
        assert counter.value() == previous, "a rejected inc must not change the value"

    @settings(max_examples=50, deadline=None)
    @given(
        observations=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantiles_stay_within_bucket_range(self, observations, q):
        histogram = Histogram("t_hist", "h")
        assert histogram.quantile(q) is None  # empty histogram
        for value in observations:
            histogram.observe(value)
        estimate = histogram.quantile(q)
        assert estimate is not None
        assert 0.0 <= estimate <= DEFAULT_BUCKETS[-1]

    def test_broken_callback_gauge_renders_nan_not_crash(self):
        registry = MetricsRegistry()
        registry.gauge("t_broken", "g", fn=lambda: 1 / 0)
        text = registry.render()
        assert "t_broken NaN" in text
        assert_well_formed(text)


@needs_numpy
class TestServedMetricsProperties:
    """The same properties checked against a real daemon's /metrics."""

    def test_live_scrape_is_well_formed_and_counters_monotone(self, daemon):
        load_graph(daemon.app)
        scrapes = []
        for index in range(3):
            status, _, _ = http_request(
                daemon.host,
                daemon.port,
                "POST",
                "/graphs/g/estimate",
                json.dumps({"vertex": index, "samples": 40, "seed": index}).encode(),
            )
            assert status == 200
            status, _, raw = http_request(daemon.host, daemon.port, "GET", "/metrics")
            assert status == 200
            text = raw.decode()
            assert_well_formed(text)
            scrapes.append(parse_samples(text))
        for earlier, later in zip(scrapes, scrapes[1:]):
            for key, value in earlier.items():
                name = key[0]
                if name.endswith("_total") or name.endswith("_count") or name.endswith(
                    "_bucket"
                ):
                    assert later.get(key, 0.0) >= value, key
        final = scrapes[-1]
        assert final[("repro_brandes_passes_total", '{graph="g"}')] > 0
        assert final[("repro_request_seconds_count", "")] >= 6


# ----------------------------------------------------------------------
# Satellite 4: one execution stamp across every surface
# ----------------------------------------------------------------------


@needs_numpy
class TestStampParity:
    QUERY = {"vertex": 0, "samples": 40, "seed": 7}

    @pytest.fixture
    def graph_file(self, tmp_path):
        graph = small_graph()
        path = tmp_path / "graph.txt"
        path.write_text(
            "\n".join(f"{u} {v}" for u, v in graph.edges()) + "\n", encoding="utf-8"
        )
        return str(path)

    def _cli_estimate(self, graph_file):
        from repro.cli.commands import main_with_args

        out = io.StringIO()
        code = main_with_args(
            [
                "estimate",
                "--graph",
                graph_file,
                "--vertex",
                str(self.QUERY["vertex"]),
                "--samples",
                str(self.QUERY["samples"]),
                "--seed",
                str(self.QUERY["seed"]),
                "--backend",
                "csr",
                "--kernel",
                "csr",
            ],
            out=out,
        )
        assert code == 0
        return json.loads(out.getvalue())

    def _cli_batch(self, graph_file, tmp_path):
        from repro.cli.commands import main_with_args

        queries = tmp_path / "queries.jsonl"
        queries.write_text(
            json.dumps(dict(self.QUERY, op="estimate")) + "\n", encoding="utf-8"
        )
        out = io.StringIO()
        code = main_with_args(
            [
                "batch",
                "--graph",
                graph_file,
                "--queries",
                str(queries),
                "--backend",
                "csr",
                "--kernel",
                "csr",
            ],
            out=out,
        )
        assert code == 0
        return json.loads(out.getvalue().strip())

    def _served(self):
        app = make_app()
        try:
            load_graph(app)
            response = app.dispatch(
                "POST", "/graphs/g/estimate", json.dumps(self.QUERY).encode()
            )
            assert response.status == 200
            return body_of(response)
        finally:
            app.close()

    def test_all_three_surfaces_emit_the_same_stamp(self, graph_file, tmp_path):
        cli = self._cli_estimate(graph_file)
        batch = self._cli_batch(graph_file, tmp_path)
        served = self._served()
        for key in EXECUTION_STAMP_KEYS:
            assert key in cli and key in batch and key in served, key
            assert cli[key] == batch[key] == served[key], key
            # The receipt restates the stamp the payload carries.
            assert served["receipt"][key] == served[key], key
        assert cli["estimate"] == batch["estimate"] == served["estimate"]

    def test_harness_header_lines_share_the_stamp_vocabulary(self):
        stamp = execution_stamp(
            {"backend": "csr", "n_jobs": 2, "batch_size": 16}, kernel="csr"
        )
        lines = format_stamp_lines(stamp).split("\n")
        assert lines == [f"{key}: {stamp[key]}" for key in EXECUTION_STAMP_KEYS]

    def test_receipt_names_graph_and_version(self):
        app = make_app()
        try:
            version = load_graph(app)
            response = app.dispatch(
                "POST", "/graphs/g/estimate", json.dumps(self.QUERY).encode()
            )
            receipt = body_of(response)["receipt"]
            assert receipt["graph"] == "g"
            assert receipt["graph_version"] == version
            assert receipt["op"] == "estimate"
            assert receipt["server_seconds"] >= 0
        finally:
            app.close()
