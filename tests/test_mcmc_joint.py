"""Tests for the joint-space Metropolis-Hastings sampler (Section 4.3, Theorems 3 and 4)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SamplingError
from repro.exact import (
    betweenness_of_vertex,
    exact_betweenness_ratio,
    exact_relative_betweenness,
    exact_stationary_relative_betweenness,
)
from repro.graphs import Graph, barbell_graph, path_graph, star_graph
from repro.mcmc import DependencyOracle, JointSpaceMHSampler


@pytest.fixture
def barbell_chain(barbell):
    """A reasonably long joint chain over three positive-betweenness vertices of the barbell.

    Reference vertices: the two bridge vertices (5, 6) and the clique vertex
    anchoring the bridge (4).  All three have strictly positive betweenness,
    so every pairwise ratio of Equation 22 is well defined.
    """
    sampler = JointSpaceMHSampler()
    return sampler.run_chain(barbell, [5, 6, 4], 3000, seed=19)


class TestChainMechanics:
    def test_states_count(self, barbell):
        chain = JointSpaceMHSampler().run_chain(barbell, [5, 0], 40, seed=1)
        assert len(chain.states) == 41

    def test_reference_set_deduplicated(self, barbell):
        chain = JointSpaceMHSampler().run_chain(barbell, [5, 5, 0], 20, seed=1)
        assert chain.reference_set == [5, 0]

    def test_requires_two_reference_vertices(self, barbell):
        with pytest.raises(ConfigurationError):
            JointSpaceMHSampler().run_chain(barbell, [5], 20, seed=1)

    def test_reference_vertices_must_exist(self, barbell):
        with pytest.raises(Exception):
            JointSpaceMHSampler().run_chain(barbell, [5, 99], 20, seed=1)

    def test_initial_state_respected(self, barbell):
        chain = JointSpaceMHSampler().run_chain(
            barbell, [5, 0], 20, seed=1, initial_state=(5, 2)
        )
        assert chain.states[0].r == 5 and chain.states[0].v == 2

    def test_initial_state_validation(self, barbell):
        with pytest.raises(ConfigurationError):
            JointSpaceMHSampler().run_chain(barbell, [5, 0], 20, seed=1, initial_state=(7, 2))

    def test_sample_counts_sum_to_kept_length(self, barbell_chain):
        counts = barbell_chain.sample_counts()
        assert sum(counts.values()) == len(barbell_chain.kept_states())

    def test_each_reference_vertex_gets_samples(self, barbell_chain):
        counts = barbell_chain.sample_counts()
        assert all(count > 0 for count in counts.values())

    def test_state_dependencies_cover_reference_set(self, barbell_chain):
        for state in barbell_chain.states[:50]:
            assert set(state.dependencies) == {5, 6, 4}

    def test_dependency_property_reads_own_reference(self, barbell_chain):
        state = barbell_chain.states[10]
        assert state.dependency == state.dependencies[state.r]

    def test_rejected_moves_repeat_state(self, barbell):
        chain = JointSpaceMHSampler().run_chain(barbell, [5, 0], 300, seed=3)
        for previous, state in zip(chain.states, chain.states[1:]):
            if not state.accepted:
                assert (state.r, state.v) == (previous.r, previous.v)

    def test_acceptance_rate_range(self, barbell_chain):
        assert 0.0 < barbell_chain.acceptance_rate() <= 1.0

    def test_deterministic_given_seed(self, barbell):
        a = JointSpaceMHSampler().run_chain(barbell, [5, 0], 80, seed=7)
        b = JointSpaceMHSampler().run_chain(barbell, [5, 0], 80, seed=7)
        assert [(s.r, s.v) for s in a.states] == [(s.r, s.v) for s in b.states]

    def test_burn_in(self, barbell):
        chain = JointSpaceMHSampler(burn_in=10).run_chain(barbell, [5, 0], 50, seed=2)
        assert len(chain.kept_states()) == 41

    def test_validation_errors(self, barbell):
        with pytest.raises(ConfigurationError):
            JointSpaceMHSampler(burn_in=-1)
        with pytest.raises(ConfigurationError):
            JointSpaceMHSampler().run_chain(barbell, [5, 0], 0)


class TestTheorem3And4:
    def test_relative_betweenness_matches_stationary_expectation(self, barbell_chain, barbell):
        # The chain average converges to the stationary (pi-weighted)
        # expectation; see exact_stationary_relative_betweenness for the
        # reproduction note on how it relates to Equation 23.
        estimate = barbell_chain.relative_betweenness(5, 6)
        exact = exact_stationary_relative_betweenness(barbell, 5, 6)
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_relative_betweenness_close_to_equation_23_for_flat_target(self, barbell_chain, barbell):
        # mu(6) is small on the barbell, so the Equation 23 value is close to
        # the stationary expectation and the estimate tracks both.
        estimate = barbell_chain.relative_betweenness(5, 6)
        exact = exact_relative_betweenness(barbell, 5, 6)
        assert estimate == pytest.approx(exact, abs=0.08)

    def test_relative_betweenness_asymmetric_pair(self, barbell_chain, barbell):
        estimate = barbell_chain.relative_betweenness(4, 5)
        exact = exact_stationary_relative_betweenness(barbell, 4, 5)
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_ratio_estimate_matches_exact_ratio(self, barbell_chain, barbell):
        # Theorem 3: the ratio of relative scores estimates BC(ri)/BC(rj).
        estimate = barbell_chain.ratio_estimate(5, 6)
        assert estimate == pytest.approx(exact_betweenness_ratio(barbell, 5, 6), abs=0.15)

    def test_ratio_estimate_inverse_consistency(self, barbell_chain):
        forward = barbell_chain.ratio_estimate(5, 4)
        backward = barbell_chain.ratio_estimate(4, 5)
        assert forward * backward == pytest.approx(1.0)

    def test_ratio_close_to_exact_for_unequal_pair(self, barbell_chain, barbell):
        # BC(5) > BC(4); the estimated ratio tracks the exact one.
        exact = exact_betweenness_ratio(barbell, 5, 4)
        assert exact > 1.0
        assert barbell_chain.ratio_estimate(5, 4) == pytest.approx(exact, abs=0.25)

    def test_relative_matrix_diagonal_is_one(self, barbell_chain):
        matrix = barbell_chain.relative_matrix()
        for r in barbell_chain.reference_set:
            assert matrix[r][r] == 1.0

    def test_relative_matrix_entries_bounded(self, barbell_chain):
        matrix = barbell_chain.relative_matrix()
        for row in matrix.values():
            for value in row.values():
                assert 0.0 <= value <= 1.0 or value != value  # allow NaN

    def test_ranking_puts_zero_betweenness_vertex_last(self, barbell):
        # A separate reference set containing a zero-betweenness clique
        # vertex (0): it must be ranked last.
        chain = JointSpaceMHSampler().run_chain(barbell, [5, 0], 800, seed=23)
        assert chain.ranking() == [5, 0]

    def test_unknown_pair_rejected(self, barbell_chain):
        with pytest.raises(ConfigurationError):
            barbell_chain.relative_betweenness(5, 99)

    def test_missing_samples_raise(self, barbell):
        # A very short chain may never visit one of the reference vertices.
        sampler = JointSpaceMHSampler()
        chain = sampler.run_chain(barbell, [5, 6, 0], 1, seed=2)
        missing = [r for r, c in chain.sample_counts().items() if c == 0]
        if missing:
            with pytest.raises(SamplingError):
                chain.relative_betweenness(5, missing[0])


class TestEstimateRelative:
    def test_bundle_contents(self, barbell):
        estimate = JointSpaceMHSampler().estimate_relative(barbell, [5, 6, 0], 500, seed=4)
        assert estimate.samples == 500
        assert set(estimate.sample_counts) == {5, 6, 0}
        assert (5, 6) in estimate.ratios
        assert estimate.relative[5][5] == 1.0
        assert estimate.elapsed_seconds >= 0.0

    def test_bundle_ranking_consistent_with_chain(self, barbell):
        estimate = JointSpaceMHSampler().estimate_relative(barbell, [5, 6, 0], 800, seed=4)
        assert estimate.ranking() == estimate.chain.ranking()

    def test_shared_oracle_reduces_evaluations(self, barbell):
        oracle = DependencyOracle(barbell)
        JointSpaceMHSampler().estimate_relative(barbell, [5, 0], 300, seed=5, oracle=oracle)
        assert oracle.evaluations <= barbell.number_of_vertices()

    def test_zero_betweenness_member_is_ranked_last(self, star6):
        # Leaves have betweenness 0; the centre must dominate the ranking.
        estimate = JointSpaceMHSampler().estimate_relative(star6, [0, 1, 2], 600, seed=6)
        assert estimate.ranking()[0] == 0
