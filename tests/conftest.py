"""Shared fixtures for the test-suite.

The fixtures provide a menagerie of small graphs with known structure so
individual tests can state expectations in closed form, plus a couple of
random graphs (fixed seeds) for cross-validation against networkx.
"""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    barabasi_albert_graph,
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.components import largest_connected_component


@pytest.fixture
def triangle() -> Graph:
    """The 3-cycle; every vertex has betweenness 0."""
    return cycle_graph(3)


@pytest.fixture
def path5() -> Graph:
    """Path on 5 vertices 0-1-2-3-4."""
    return path_graph(5)


@pytest.fixture
def star6() -> Graph:
    """Star with centre 0 and 6 leaves."""
    return star_graph(6)


@pytest.fixture
def barbell() -> Graph:
    """Barbell graph: two K5 cliques joined by a 2-vertex bridge (vertices 5, 6)."""
    return barbell_graph(5, 2)


@pytest.fixture
def grid4x4() -> Graph:
    """4x4 grid graph."""
    return grid_graph(4, 4)


@pytest.fixture
def small_er() -> Graph:
    """Connected Erdős–Rényi graph, fixed seed (30 vertices)."""
    graph = erdos_renyi_graph(30, 0.15, seed=42)
    return largest_connected_component(graph)


@pytest.fixture
def small_ba() -> Graph:
    """Barabási–Albert graph, fixed seed (30 vertices)."""
    return barabasi_albert_graph(30, 2, seed=7)


@pytest.fixture
def small_ws() -> Graph:
    """Watts–Strogatz graph, fixed seed (24 vertices)."""
    return watts_strogatz_graph(24, 4, 0.2, seed=11)


@pytest.fixture
def weighted_diamond() -> Graph:
    """Weighted diamond where two equal-length shortest paths exist between 0 and 3."""
    return Graph.from_edges(
        [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0), (0, 4, 0.5), (4, 3, 3.0)],
        weighted=True,
    )
