"""End-to-end integration tests spanning datasets, samplers, analysis and the API.

These mirror, at miniature scale, what the benchmark harness does for the
paper's experiments, so the harness logic itself is exercised in CI time.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    convergence_sweep,
    empirical_coverage,
    ranking_report,
    spearman_correlation,
)
from repro.centrality import betweenness_single, relative_betweenness
from repro.datasets import load_dataset, pick_reference_set, pick_targets
from repro.exact import (
    betweenness_centrality,
    betweenness_of_vertex,
    exact_betweenness_ratio,
    exact_stationary_relative_betweenness,
)
from repro.mcmc import (
    SingleSpaceMHSampler,
    mcmc_error_probability,
    mu_of_vertex,
)
from repro.samplers import UniformSourceSampler


class TestMiniExperimentE1:
    """Error-vs-samples comparison between the MH sampler and a baseline."""

    def test_mh_unbiased_and_uniform_baseline_both_converge(self):
        graph = load_dataset("caveman", size="tiny", seed=0)
        target = pick_targets(graph)["high"]
        exact = betweenness_of_vertex(graph, target)

        mh = SingleSpaceMHSampler(estimator="proposal")
        mh_curve = convergence_sweep(
            lambda samples, rng: mh.estimate(graph, target, samples, seed=rng).estimate,
            exact,
            sample_budgets=[20, 160],
            repetitions=4,
            seed=1,
        )
        baseline = UniformSourceSampler()
        base_curve = convergence_sweep(
            lambda samples, rng: baseline.estimate(graph, target, samples, seed=rng).estimate,
            exact,
            sample_budgets=[20, 160],
            repetitions=4,
            seed=2,
        )
        # More samples must not increase the mean error dramatically, and the
        # largest budgets should land within a sensible absolute error.
        assert mh_curve[-1].mean_error < 0.1
        assert base_curve[-1].mean_error < 0.1


class TestMiniExperimentE3:
    """Empirical (epsilon, delta) coverage of Theorem 1 on a separator vertex."""

    def test_failure_rate_below_theoretical_bound(self):
        graph = load_dataset("barbell", size="tiny", seed=0)
        target = pick_targets(graph)["high"]
        exact = betweenness_of_vertex(graph, target)
        mu = mu_of_vertex(graph, target)
        sampler = SingleSpaceMHSampler()
        samples = 150
        epsilon = 0.35  # generous epsilon keeps runtime small but the bound non-trivial

        result = empirical_coverage(
            lambda rng: sampler.estimate(graph, target, samples, seed=rng).estimate,
            exact,
            epsilon=epsilon,
            runs=15,
            seed=3,
            theoretical_bound=mcmc_error_probability(samples, epsilon, mu),
        )
        assert result.within_bound()


class TestMiniExperimentE5:
    """Joint-space sampler: ratios and relative scores on a real dataset stand-in."""

    def test_relative_scores_and_ratios_track_exact_values(self):
        graph = load_dataset("caveman", size="tiny", seed=0)
        refs = pick_reference_set(graph, 3)
        # The dependency oracle caches one Brandes pass per distinct source,
        # so a long chain on this 24-vertex graph stays cheap.
        estimate = relative_betweenness(graph, refs, samples=6000, seed=5)

        # The per-pair estimates converge to the stationary expectation (see
        # exact_stationary_relative_betweenness for the reproduction note).
        for ri in refs:
            for rj in refs:
                if ri == rj:
                    continue
                exact_rel = exact_stationary_relative_betweenness(graph, ri, rj)
                assert estimate.relative[ri][rj] == pytest.approx(exact_rel, abs=0.1)

        # Theorem 3: the ratio estimator is consistent for BC(ri)/BC(rj).
        ri, rj = refs[0], refs[1]
        assert estimate.ratios[(ri, rj)] == pytest.approx(
            exact_betweenness_ratio(graph, ri, rj), rel=0.25
        )


class TestMiniExperimentE6:
    """Ranking fidelity of the joint-space sampler."""

    def test_estimated_ranking_correlates_with_exact(self):
        graph = load_dataset("barbell", size="tiny", seed=0)
        refs = pick_reference_set(graph, 4)
        estimate = relative_betweenness(graph, refs, samples=1500, seed=6)
        exact = {v: betweenness_of_vertex(graph, v) for v in refs}
        estimated_scores = {
            v: sum(estimate.relative[v][w] for w in refs if w != v) for v in refs
        }
        report = ranking_report(estimated_scores, exact, k=2)
        assert report["spearman"] > 0.5


class TestEndToEndApi:
    def test_full_pipeline_on_every_tiny_dataset(self):
        # For every dataset family: load, pick a target, estimate with the
        # corrected MH read-out, and compare against the exact value.
        from repro.datasets import dataset_names

        for name in dataset_names():
            graph = load_dataset(name, size="tiny", seed=0)
            targets = pick_targets(graph)
            target = targets["high"]
            exact = betweenness_of_vertex(graph, target)
            result = betweenness_single(
                graph, target, method="mh-unbiased", samples=150, seed=7
            )
            assert result.estimate == pytest.approx(exact, abs=max(0.3 * exact, 0.08))

    def test_exact_and_estimated_rankings_agree_on_clear_hierarchy(self):
        graph = load_dataset("social", size="tiny", seed=1)
        exact = betweenness_centrality(graph)
        estimates = UniformSourceSampler().estimate_all(
            graph, graph.number_of_vertices(), seed=2
        )
        correlation = spearman_correlation(
            [estimates[v] for v in graph.vertices()],
            [exact[v] for v in graph.vertices()],
        )
        assert correlation > 0.9
