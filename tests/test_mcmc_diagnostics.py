"""Tests for MCMC chain diagnostics."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.graphs import barbell_graph, star_graph
from repro.mcmc import (
    ChainDiagnostics,
    MultiChainDiagnostics,
    SingleSpaceMHSampler,
    autocorrelation,
    diagnose_chain,
    diagnose_chains,
    effective_sample_size,
    empirical_vs_stationary,
    gelman_rubin,
    geweke_z_score,
    multichain_ess,
    split_rhat,
    stationary_distribution,
    total_variation_distance,
)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        trace = [1.0, 2.0, 3.0, 4.0, 3.0, 2.0]
        assert autocorrelation(trace, 0) == pytest.approx(1.0)

    def test_alternating_sequence_negative_lag_one(self):
        trace = [1.0, -1.0] * 20
        assert autocorrelation(trace, 1) < -0.9

    def test_constant_sequence_is_zero(self):
        assert autocorrelation([2.0] * 10, 1) == 0.0

    def test_lag_longer_than_trace(self):
        assert autocorrelation([1.0, 2.0], 5) == 0.0

    def test_negative_lag_rejected(self):
        with pytest.raises(ConfigurationError):
            autocorrelation([1.0, 2.0], -1)


class TestEffectiveSampleSize:
    def test_iid_like_trace_has_large_ess(self):
        import random

        rng = random.Random(1)
        trace = [rng.random() for _ in range(500)]
        assert effective_sample_size(trace) > 250

    def test_highly_correlated_trace_has_small_ess(self):
        trace = [float(i // 50) for i in range(500)]  # long constant plateaus
        assert effective_sample_size(trace) < 100

    def test_constant_trace_reports_full_length(self):
        assert effective_sample_size([1.0] * 50) == 50.0

    def test_empty_trace(self):
        assert effective_sample_size([]) == 0.0


class TestGeweke:
    def test_stationary_trace_small_z(self):
        import random

        rng = random.Random(2)
        trace = [rng.gauss(0, 1) for _ in range(1000)]
        assert abs(geweke_z_score(trace)) < 3.0

    def test_drifting_trace_large_z(self):
        trace = [float(i) for i in range(400)]
        assert abs(geweke_z_score(trace)) > 5.0

    def test_short_trace_is_zero(self):
        assert geweke_z_score([1.0, 2.0]) == 0.0

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            geweke_z_score([1.0] * 10, first_fraction=0.0)
        with pytest.raises(ConfigurationError):
            geweke_z_score([1.0] * 10, first_fraction=0.7, last_fraction=0.7)


class TestDistributionDiagnostics:
    def test_total_variation_identical(self):
        p = {0: 0.5, 1: 0.5}
        assert total_variation_distance(p, dict(p)) == 0.0

    def test_total_variation_disjoint(self):
        assert total_variation_distance({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    def test_total_variation_partial_overlap(self):
        p = {0: 0.5, 1: 0.5}
        q = {0: 0.25, 1: 0.75}
        assert total_variation_distance(p, q) == pytest.approx(0.25)

    def test_stationary_distribution_normalised(self, barbell):
        dist = stationary_distribution(barbell, 5)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(p > 0.0 for p in dist.values())

    def test_stationary_distribution_zero_betweenness(self, star6):
        with pytest.raises(ConfigurationError):
            stationary_distribution(star6, 1)

    def test_empirical_vs_stationary_decreases_with_chain_length(self, barbell):
        sampler = SingleSpaceMHSampler()
        short = sampler.run_chain(barbell, 5, 30, seed=3)
        long = sampler.run_chain(barbell, 5, 3000, seed=3)
        assert empirical_vs_stationary(barbell, long) < empirical_vs_stationary(barbell, short)


class TestGelmanRubin:
    """R-hat validated against hand-computed values on synthetic chain arrays."""

    def test_hand_computed_value(self):
        # traces [1,2,3] and [2,4,6]: within = (1 + 4) / 2 = 2.5,
        # B/n = var([2, 4], ddof=1) = 2, var+ = (2/3)*2.5 + 2 = 11/3,
        # R-hat = sqrt((11/3) / 2.5) = sqrt(22/15).
        assert gelman_rubin([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0]]) == pytest.approx(
            math.sqrt(22.0 / 15.0)
        )

    def test_identical_chains(self):
        # Equal chains: B = 0, so R-hat = sqrt((n-1)/n) — below 1 by design
        # of the finite-sample estimator (n=4 -> sqrt(3/4)).
        assert gelman_rubin([[1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0]]) == pytest.approx(
            math.sqrt(0.75)
        )

    def test_constant_equal_chains_are_converged(self):
        assert gelman_rubin([[2.0, 2.0, 2.0], [2.0, 2.0, 2.0]]) == 1.0

    def test_constant_disagreeing_chains_never_converge(self):
        assert gelman_rubin([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]) == float("inf")

    def test_truncates_to_shortest_chain(self):
        # The longer chain's tail must not affect the statistic.
        short = gelman_rubin([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0]])
        padded = gelman_rubin([[1.0, 2.0, 3.0, 999.0], [2.0, 4.0, 6.0]])
        assert padded == pytest.approx(short)

    def test_too_short_chains_read_as_unconverged(self):
        assert gelman_rubin([[1.0], [2.0]]) == float("inf")

    def test_single_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            gelman_rubin([[1.0, 2.0, 3.0]])


class TestSplitRhat:
    def test_matches_gelman_rubin_on_explicit_halves(self):
        traces = [[1.0, 2.0, 3.0, 4.0], [2.0, 1.0, 4.0, 3.0]]
        halves = [[1.0, 2.0], [3.0, 4.0], [2.0, 1.0], [4.0, 3.0]]
        assert split_rhat(traces) == pytest.approx(gelman_rubin(halves))

    def test_degenerate_single_chain_splits_into_halves(self):
        # One drifting chain: the halves disagree, which the unsplit
        # statistic could never see.
        drifting = [float(i) for i in range(20)]
        stationary = [1.0, 2.0] * 10
        assert split_rhat([drifting]) > split_rhat([stationary])

    def test_odd_length_drops_the_middle_element(self):
        assert split_rhat([[1.0, 2.0, 99.0, 1.0, 2.0]]) == pytest.approx(
            split_rhat([[1.0, 2.0, 1.0, 2.0]])
        )

    def test_too_short_for_halves_is_unconverged(self):
        assert split_rhat([[1.0, 2.0, 3.0]]) == float("inf")

    def test_constant_chains_are_converged(self):
        assert split_rhat([[5.0] * 10, [5.0] * 10]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            split_rhat([])


class TestMultiChainESS:
    def test_independent_chains_add(self):
        # Constant chains have ESS = length by convention, so K chains of
        # length 50 pool to exactly 50 K.
        assert multichain_ess([[1.0] * 50, [1.0] * 50, [1.0] * 50]) == 150.0

    def test_matches_per_chain_sum(self):
        import random

        rng = random.Random(3)
        traces = [[rng.random() for _ in range(100)] for _ in range(4)]
        assert multichain_ess(traces) == pytest.approx(
            sum(effective_sample_size(t) for t in traces)
        )

    def test_empty_family(self):
        assert multichain_ess([]) == 0.0


class TestDiagnoseChains:
    def test_report_fields(self, barbell):
        sampler = SingleSpaceMHSampler()
        chains = [sampler.run_chain(barbell, 5, 100, seed=s) for s in (1, 2, 3)]
        report = diagnose_chains(chains, evaluations=7, converged=True, rounds=2)
        assert isinstance(report, MultiChainDiagnostics)
        assert report.n_chains == 3
        assert report.chain_lengths == [100, 100, 100]
        assert len(report.acceptance_rates) == 3
        assert report.evaluations == 7
        assert report.converged is True
        assert report.rounds == 2
        assert report.ess > 0.0
        assert report.rhat == pytest.approx(
            split_rhat([c.dependency_trace() for c in chains])
        )

    def test_mean_acceptance_rate(self):
        report = MultiChainDiagnostics(
            n_chains=2, rhat=1.0, ess=50.0, acceptance_rates=[0.4, 0.6]
        )
        assert report.mean_acceptance_rate() == pytest.approx(0.5)

    def test_healthy_thresholds(self):
        good = MultiChainDiagnostics(
            n_chains=2, rhat=1.02, ess=50.0, acceptance_rates=[0.4, 0.6]
        )
        assert good.healthy()
        assert not good.healthy(rhat_threshold=1.01)
        bad_mixing = MultiChainDiagnostics(
            n_chains=2, rhat=1.5, ess=50.0, acceptance_rates=[0.4, 0.6]
        )
        assert not bad_mixing.healthy()
        degenerate = MultiChainDiagnostics(
            n_chains=2, rhat=1.0, ess=50.0, acceptance_rates=[0.001, 0.6]
        )
        assert not degenerate.healthy()

    def test_empty_family_rejected(self):
        with pytest.raises(ConfigurationError):
            diagnose_chains([])


class TestDiagnoseChain:
    def test_report_fields(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 300, seed=5)
        report = diagnose_chain(chain, graph=barbell)
        assert isinstance(report, ChainDiagnostics)
        assert report.chain_length == 300
        assert 0.0 <= report.acceptance_rate <= 1.0
        assert report.effective_sample_size > 0.0
        assert report.tv_distance_to_stationary is not None

    def test_report_without_graph_skips_tv(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 100, seed=5)
        report = diagnose_chain(chain)
        assert report.tv_distance_to_stationary is None

    def test_healthy_chain(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 2000, seed=5)
        assert diagnose_chain(chain).healthy()

    def test_unhealthy_when_acceptance_degenerate(self):
        report = ChainDiagnostics(
            acceptance_rate=0.001,
            effective_sample_size=100.0,
            geweke_z=0.1,
            lag1_autocorrelation=0.2,
            chain_length=100,
            evaluations=10,
        )
        assert not report.healthy()
