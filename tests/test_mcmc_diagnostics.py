"""Tests for MCMC chain diagnostics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graphs import barbell_graph, star_graph
from repro.mcmc import (
    ChainDiagnostics,
    SingleSpaceMHSampler,
    autocorrelation,
    diagnose_chain,
    effective_sample_size,
    empirical_vs_stationary,
    geweke_z_score,
    stationary_distribution,
    total_variation_distance,
)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        trace = [1.0, 2.0, 3.0, 4.0, 3.0, 2.0]
        assert autocorrelation(trace, 0) == pytest.approx(1.0)

    def test_alternating_sequence_negative_lag_one(self):
        trace = [1.0, -1.0] * 20
        assert autocorrelation(trace, 1) < -0.9

    def test_constant_sequence_is_zero(self):
        assert autocorrelation([2.0] * 10, 1) == 0.0

    def test_lag_longer_than_trace(self):
        assert autocorrelation([1.0, 2.0], 5) == 0.0

    def test_negative_lag_rejected(self):
        with pytest.raises(ConfigurationError):
            autocorrelation([1.0, 2.0], -1)


class TestEffectiveSampleSize:
    def test_iid_like_trace_has_large_ess(self):
        import random

        rng = random.Random(1)
        trace = [rng.random() for _ in range(500)]
        assert effective_sample_size(trace) > 250

    def test_highly_correlated_trace_has_small_ess(self):
        trace = [float(i // 50) for i in range(500)]  # long constant plateaus
        assert effective_sample_size(trace) < 100

    def test_constant_trace_reports_full_length(self):
        assert effective_sample_size([1.0] * 50) == 50.0

    def test_empty_trace(self):
        assert effective_sample_size([]) == 0.0


class TestGeweke:
    def test_stationary_trace_small_z(self):
        import random

        rng = random.Random(2)
        trace = [rng.gauss(0, 1) for _ in range(1000)]
        assert abs(geweke_z_score(trace)) < 3.0

    def test_drifting_trace_large_z(self):
        trace = [float(i) for i in range(400)]
        assert abs(geweke_z_score(trace)) > 5.0

    def test_short_trace_is_zero(self):
        assert geweke_z_score([1.0, 2.0]) == 0.0

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            geweke_z_score([1.0] * 10, first_fraction=0.0)
        with pytest.raises(ConfigurationError):
            geweke_z_score([1.0] * 10, first_fraction=0.7, last_fraction=0.7)


class TestDistributionDiagnostics:
    def test_total_variation_identical(self):
        p = {0: 0.5, 1: 0.5}
        assert total_variation_distance(p, dict(p)) == 0.0

    def test_total_variation_disjoint(self):
        assert total_variation_distance({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    def test_total_variation_partial_overlap(self):
        p = {0: 0.5, 1: 0.5}
        q = {0: 0.25, 1: 0.75}
        assert total_variation_distance(p, q) == pytest.approx(0.25)

    def test_stationary_distribution_normalised(self, barbell):
        dist = stationary_distribution(barbell, 5)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(p > 0.0 for p in dist.values())

    def test_stationary_distribution_zero_betweenness(self, star6):
        with pytest.raises(ConfigurationError):
            stationary_distribution(star6, 1)

    def test_empirical_vs_stationary_decreases_with_chain_length(self, barbell):
        sampler = SingleSpaceMHSampler()
        short = sampler.run_chain(barbell, 5, 30, seed=3)
        long = sampler.run_chain(barbell, 5, 3000, seed=3)
        assert empirical_vs_stationary(barbell, long) < empirical_vs_stationary(barbell, short)


class TestDiagnoseChain:
    def test_report_fields(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 300, seed=5)
        report = diagnose_chain(chain, graph=barbell)
        assert isinstance(report, ChainDiagnostics)
        assert report.chain_length == 300
        assert 0.0 <= report.acceptance_rate <= 1.0
        assert report.effective_sample_size > 0.0
        assert report.tv_distance_to_stationary is not None

    def test_report_without_graph_skips_tv(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 100, seed=5)
        report = diagnose_chain(chain)
        assert report.tv_distance_to_stationary is None

    def test_healthy_chain(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 2000, seed=5)
        assert diagnose_chain(chain).healthy()

    def test_unhealthy_when_acceptance_degenerate(self):
        report = ChainDiagnostics(
            acceptance_rate=0.001,
            effective_sample_size=100.0,
            geweke_z=0.1,
            lag1_autocorrelation=0.2,
            chain_length=100,
            evaluations=10,
        )
        assert not report.healthy()
