"""Property-based equivalence suite: the CSR backend must match the dict backend.

The CSR refactor promises that the flat-array kernels are drop-in twins of
the dict-backed reference implementations: same distances, same path counts,
same traversal order, same predecessor lists (and ordering, which the
rng-driven path samplers rely on), same dependency scores, and — for every
registered estimator — the same estimate for a fixed seed.  This module
checks those promises on randomly generated graphs (Erdős–Rényi,
Barabási–Albert, barbell, random weighted), plus the cache-invalidation
contract of ``Graph.csr()``.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.centrality.api import SINGLE_VERTEX_METHODS, betweenness_single
from repro.exact.brandes import betweenness_centrality
from repro.exact.group import group_betweenness_centrality
from repro.graphs import (
    Graph,
    barabasi_albert_graph,
    barbell_graph,
    erdos_renyi_graph,
)
from repro.graphs.components import largest_connected_component
from repro.graphs.csr import np
from repro.shortest_paths import (
    accumulate_dependencies,
    accumulate_dependencies_batch_csr,
    accumulate_dependencies_csr,
    bfs_distances,
    bfs_distances_csr,
    bfs_spd,
    bfs_spd_batch_csr,
    bfs_spd_csr,
    bidirectional_shortest_path_info,
    bidirectional_shortest_path_info_csr,
    csr_source_dependencies,
    dijkstra_spd,
    dijkstra_spd_csr,
)
from repro.shortest_paths.compiled import (
    accumulate_dependencies_compiled,
    batch_dependencies_compiled,
    bfs_spd_compiled,
    source_dependencies_compiled,
)

pytestmark = pytest.mark.skipif(np is None, reason="the CSR backend requires numpy")

# ----------------------------------------------------------------------
# Graph strategies: one generator family per draw, seeded by hypothesis.
# ----------------------------------------------------------------------


def _random_weighted_graph(seed: int) -> Graph:
    rng = random.Random(seed)
    graph = Graph(weighted=True)
    n = rng.randint(6, 18)
    for _ in range(3 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, rng.choice([0.5, 1.0, 1.5, 2.0, 3.0]))
    return largest_connected_component(graph)


def _make_graph(family: str, seed: int) -> Graph:
    if family == "er":
        return largest_connected_component(erdos_renyi_graph(24, 0.12, seed=seed))
    if family == "ba":
        return barabasi_albert_graph(22, 2, seed=seed)
    if family == "barbell":
        rng = random.Random(seed)
        return barbell_graph(rng.randint(3, 6), rng.randint(1, 4))
    return _random_weighted_graph(seed)


graph_cases = st.tuples(
    st.sampled_from(["er", "ba", "barbell", "weighted"]),
    st.integers(min_value=0, max_value=10_000),
).map(lambda case: _make_graph(*case)).filter(lambda g: g.number_of_vertices() >= 3)


# ----------------------------------------------------------------------
# SPD equivalence
# ----------------------------------------------------------------------


@given(graph_cases, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_spd_construction_matches_dict_backend(graph, source_seed):
    """BFS/Dijkstra CSR SPDs equal the dict SPDs field for field."""
    vertices = graph.vertices()
    source = vertices[source_seed % len(vertices)]
    csr = graph.csr()
    if graph.weighted:
        dict_spd = dijkstra_spd(graph, source)
        csr_spd = dijkstra_spd_csr(csr, csr.index_of(source))
    else:
        dict_spd = bfs_spd(graph, source)
        csr_spd = bfs_spd_csr(csr, csr.index_of(source))
    assert csr_spd.source == source
    assert csr_spd.distance == dict_spd.distance
    assert csr_spd.sigma == dict_spd.sigma
    assert csr_spd.order == dict_spd.order
    assert csr_spd.predecessors == dict_spd.predecessors
    # The compat view must satisfy the same structural invariants.
    csr_spd.to_dag().validate()


@given(graph_cases, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_dependency_accumulation_matches_dict_backend(graph, source_seed):
    """Brandes dependency scores agree across backends (float tolerance only)."""
    vertices = graph.vertices()
    source = vertices[source_seed % len(vertices)]
    csr = graph.csr()
    if graph.weighted:
        deltas = accumulate_dependencies(dijkstra_spd(graph, source))
        array = accumulate_dependencies_csr(dijkstra_spd_csr(csr, csr.index_of(source)))
    else:
        deltas = accumulate_dependencies(bfs_spd(graph, source))
        array = accumulate_dependencies_csr(bfs_spd_csr(csr, csr.index_of(source)))
    for v, value in deltas.items():
        assert math.isclose(value, float(array[csr.index_of(v)]), rel_tol=1e-9, abs_tol=1e-12)


@given(graph_cases.filter(lambda g: not g.weighted), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bfs_distances_and_bidirectional_match(graph, pair_seed):
    """Distance-only BFS and the bidirectional pair query agree across backends."""
    vertices = graph.vertices()
    s = vertices[pair_seed % len(vertices)]
    t = vertices[(3 * pair_seed + 1) % len(vertices)]
    csr = graph.csr()
    dist, order = bfs_distances_csr(csr, csr.index_of(s))
    dict_distances = bfs_distances(graph, s)
    assert {csr.vertex_at(i): dist[i] for i in order.tolist()} == dict_distances
    assert [csr.vertex_at(i) for i in order.tolist()] == list(dict_distances)
    assert bidirectional_shortest_path_info(graph, s, t) == (
        bidirectional_shortest_path_info_csr(csr, csr.index_of(s), csr.index_of(t))
    )


# ----------------------------------------------------------------------
# Whole-algorithm equivalence
# ----------------------------------------------------------------------


@given(graph_cases)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_brandes_betweenness_matches_dict_backend(graph):
    """Exact Brandes centrality agrees across backends on every vertex."""
    dict_scores = betweenness_centrality(graph, backend="dict")
    csr_scores = betweenness_centrality(graph, backend="csr")
    assert dict_scores.keys() == csr_scores.keys()
    for v in dict_scores:
        assert math.isclose(
            dict_scores[v], csr_scores[v], rel_tol=1e-9, abs_tol=1e-12
        )


@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(sorted(SINGLE_VERTEX_METHODS)),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_every_estimator_is_backend_invariant(seed, method):
    """For a fixed seed, every registered estimator returns the same estimate
    on both backends (identical rng streams; float-accumulation tolerance)."""
    graph = barabasi_albert_graph(20, 2, seed=seed % 50)
    target = graph.vertices()[seed % graph.number_of_vertices()]
    dict_result = betweenness_single(
        graph, target, method=method, samples=40, seed=seed, backend="dict"
    )
    csr_result = betweenness_single(
        graph, target, method=method, samples=40, seed=seed, backend="csr"
    )
    assert math.isclose(
        dict_result.estimate, csr_result.estimate, rel_tol=1e-9, abs_tol=1e-12
    )


def test_group_betweenness_matches_dict_backend(barbell):
    for group in ([5], [5, 6], [0, 5]):
        assert math.isclose(
            group_betweenness_centrality(barbell, group, backend="dict"),
            group_betweenness_centrality(barbell, group, backend="csr"),
            rel_tol=1e-9,
        )


# ----------------------------------------------------------------------
# Cache / invalidation contract
# ----------------------------------------------------------------------


def test_csr_view_is_cached_until_mutation():
    graph = erdos_renyi_graph(12, 0.3, seed=1)
    view = graph.csr()
    assert graph.csr() is view, "repeated csr() calls must return the cached view"


@pytest.mark.parametrize(
    "mutate",
    [
        lambda g: g.add_edge(0, 5),
        lambda g: g.add_vertex("fresh"),
        lambda g: g.remove_edge(*next(iter(g.edges()))),
        lambda g: g.remove_vertex(g.vertices()[-1]),
    ],
    ids=["add_edge", "add_vertex", "remove_edge", "remove_vertex"],
)
def test_mutation_invalidates_cached_view(mutate):
    graph = largest_connected_component(erdos_renyi_graph(14, 0.3, seed=2))
    stale = graph.csr()
    mutate(graph)
    fresh = graph.csr()
    assert fresh is not stale, "mutation must drop the cached CSR view"
    # The fresh snapshot reflects the mutation; the stale one still
    # describes the old graph (immutability of the snapshot itself).
    assert fresh.number_of_vertices() == graph.number_of_vertices()
    assert fresh.number_of_edges() == graph.number_of_edges()


def test_updating_an_edge_weight_invalidates_the_view():
    graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0)], weighted=True)
    stale = graph.csr()
    graph.add_edge(0, 1, 5.0)  # same edge, new weight
    fresh = graph.csr()
    assert fresh is not stale
    i, j = fresh.index_of(0), 0
    neighbors = fresh.neighbors_of(i).tolist()
    weights = fresh.weights_of(i).tolist()
    assert weights[neighbors.index(fresh.index_of(1))] == 5.0


def test_weight_mutation_invalidates_snapshot_and_backends_stay_equivalent():
    """Mutating edge weights after ``.csr()`` drops the cached snapshot, and
    the Dijkstra-based estimators agree across backends on the new weights."""
    graph = _random_weighted_graph(37)
    target = graph.vertices()[1]
    stale = graph.csr()
    before = betweenness_centrality(graph, backend="csr")

    # Re-weight a few existing edges (same endpoints, new weights): the
    # mutation must invalidate the cache even though the topology is intact.
    reweighted = [edge for edge, _ in zip(graph.edges(data=True), range(3))]
    for u, v, w in reweighted:
        graph.add_edge(u, v, w + 2.5)
    fresh = graph.csr()
    assert fresh is not stale, "weight mutation must drop the cached CSR view"
    for u, v, w in reweighted:
        i = fresh.index_of(u)
        position = fresh.neighbors_of(i).tolist().index(fresh.index_of(v))
        assert fresh.weights_of(i)[position] == w + 2.5

    # Dijkstra-backed exact scores: dict and CSR agree on the new weights...
    dict_scores = betweenness_centrality(graph, backend="dict")
    csr_scores = betweenness_centrality(graph, backend="csr")
    assert dict_scores.keys() == csr_scores.keys()
    for v in dict_scores:
        assert math.isclose(dict_scores[v], csr_scores[v], rel_tol=1e-9, abs_tol=1e-12)
    # ... and the scores moved with the weights (the stale snapshot's values
    # would not have).
    assert any(
        not math.isclose(before[v], csr_scores[v], rel_tol=1e-9, abs_tol=1e-12)
        for v in before
    )

    # Dijkstra-based sampling estimates stay rng-stream identical too.
    for method in ("uniform-source", "distance"):
        dict_est = betweenness_single(
            graph, target, method=method, samples=30, seed=7,
            backend="dict", check_connected=False,
        )
        csr_est = betweenness_single(
            graph, target, method=method, samples=30, seed=7,
            backend="csr", check_connected=False,
        )
        assert math.isclose(
            dict_est.estimate, csr_est.estimate, rel_tol=1e-9, abs_tol=1e-12
        )


def test_spd_compat_readers_are_lenient_for_unknown_labels():
    """Absent labels read as unreachable on both DAG flavours, never raise."""
    graph = barbell_graph(3, 1)
    for spd in (bfs_spd(graph, 0), bfs_spd_csr(graph.csr(), 0)):
        assert spd.is_reachable("ghost") is False
        assert spd.distance_to("ghost") == float("inf")
        assert spd.path_count("ghost") == 0.0
        assert spd.parents("ghost") == []


def test_oracle_unknown_target_reads_zero_on_both_backends():
    """The dict backend's `.get(target, 0.0)` contract must survive on CSR."""
    from repro.mcmc.estimates import DependencyOracle

    graph = barbell_graph(4, 1)
    for backend in ("dict", "csr"):
        oracle = DependencyOracle(graph, backend=backend)
        assert oracle.dependency(0, "not-a-vertex") == 0.0
        assert oracle.dependencies_for(0, ["not-a-vertex", 4]) [
            "not-a-vertex"
        ] == 0.0


def test_repro_backend_env_overrides_auto(monkeypatch):
    from repro.graphs.csr import resolve_backend
    from repro.errors import ConfigurationError

    monkeypatch.setenv("REPRO_BACKEND", "dict")
    assert resolve_backend("auto") == "dict"
    assert resolve_backend("csr") == "csr", "explicit backend wins over the env var"
    monkeypatch.setenv("REPRO_BACKEND", "gpu")
    with pytest.raises(ConfigurationError):
        resolve_backend("auto")


def test_from_edges_builds_the_same_graph_as_add_edge_loops():
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    via_classmethod = Graph.from_edges(edges)
    by_hand = Graph()
    for u, v in edges:
        by_hand.add_edge(u, v)
    assert sorted(via_classmethod.edges()) == sorted(by_hand.edges())
    weighted = Graph.from_edges([(0, 1, 2.5), (1, 2, 0.5)], weighted=True)
    assert weighted.edge_weight(0, 1) == 2.5
    assert weighted.edge_weight(1, 2) == 0.5


# ----------------------------------------------------------------------
# Vectorised snapshot builder + scipy adjacency caching
# ----------------------------------------------------------------------


def _reference_from_graph(graph):
    """The original per-edge Python loop, kept as the byte-identity oracle
    for the vectorised ``CSRGraph.from_graph``."""
    vertices = graph.vertices()
    index = {v: i for i, v in enumerate(vertices)}
    indptr = np.zeros(len(vertices) + 1, dtype=np.int64)
    flat_indices = []
    flat_weights = []
    for i, v in enumerate(vertices):
        adj = graph.adjacency(v)
        flat_indices.extend(index[u] for u in adj)
        flat_weights.extend(adj.values())
        indptr[i + 1] = len(flat_indices)
    return (
        indptr,
        np.asarray(flat_indices, dtype=np.int64),
        np.asarray(flat_weights, dtype=np.float64),
    )


def _isolated_vertex_graph():
    g = Graph()
    g.add_vertex(9)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    return g


def _directed_weighted_graph():
    g = Graph(directed=True, weighted=True)
    g.add_edge("a", "b", 2.0)
    g.add_edge("b", "c", 0.5)
    g.add_edge("c", "a", 1.5)
    g.add_edge("a", "c", 3.0)
    return g


@pytest.mark.parametrize(
    "builder",
    [
        lambda: barabasi_albert_graph(25, 2, seed=3),
        lambda: erdos_renyi_graph(20, 0.2, seed=8),
        lambda: _random_weighted_graph(5),
        _isolated_vertex_graph,
        _directed_weighted_graph,
        Graph,  # empty graph
    ],
)
def test_vectorized_from_graph_is_byte_identical_to_the_loop(builder):
    from repro.graphs.csr import CSRGraph

    graph = builder()
    csr = CSRGraph.from_graph(graph)
    indptr, indices, weights = _reference_from_graph(graph)
    assert np.array_equal(csr.indptr, indptr)
    assert np.array_equal(csr.indices, indices)
    assert np.array_equal(csr.weights, weights)
    assert csr.indptr.dtype == indptr.dtype
    assert csr.indices.dtype == indices.dtype
    assert csr.weights.dtype == weights.dtype
    assert csr.vertices == tuple(graph.vertices())


def test_scipy_adjacency_directed_builds_a_cached_transpose():
    pytest.importorskip("scipy")
    from scipy.sparse import csr_matrix

    g = Graph(directed=True, weighted=True)
    g.add_edge(0, 1, 2.0)
    g.add_edge(1, 2, 0.5)
    g.add_edge(2, 0, 1.5)
    g.add_edge(0, 2, 3.0)
    csr = g.csr()
    forward = csr.scipy_adjacency()
    backward = csr.scipy_adjacency(transpose=True)
    # Built once, cached: repeated calls return the same objects.
    assert csr.scipy_adjacency() is forward
    assert csr.scipy_adjacency(transpose=True) is backward
    assert isinstance(backward, csr_matrix)
    assert backward is not forward
    # Consistency: the backward view is exactly the forward transpose.
    assert (backward.toarray() == forward.toarray().T).all()
    n = csr.number_of_vertices()
    dense = np.zeros((n, n))
    for u, v, w in g.edges(data=True):
        dense[csr.index_of(u), csr.index_of(v)] = w
    assert (forward.toarray() == dense).all()


def test_scipy_adjacency_undirected_backward_is_forward():
    pytest.importorskip("scipy")
    g = barbell_graph(3, 1)
    csr = g.csr()
    assert csr.scipy_adjacency(transpose=True) is csr.scipy_adjacency()


# ----------------------------------------------------------------------
# Compiled kernel rung: bit-identity with the numpy kernels
# ----------------------------------------------------------------------
#
# The compiled twins in repro.shortest_paths.compiled are plain-Python
# bodies wrapped by @njit only when numba imports, so this suite exercises
# the exact code the jit compiles even on hosts without numba — the
# bit-identity promise it checks is the one that makes the kernel knob
# result-neutral everywhere.

unweighted_cases = graph_cases.filter(lambda g: not g.weighted)


@given(unweighted_cases, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_bfs_spd_is_bitwise_identical_to_numpy(graph, source_seed):
    """The compiled BFS wave reproduces dist/sig/order and the level-grouped
    DAG edges of the numpy kernel exactly (array_equal, not isclose)."""
    csr = graph.csr()
    source = source_seed % csr.number_of_vertices()
    numpy_spd = bfs_spd_csr(csr, source, kernel="csr")
    compiled_spd = bfs_spd_compiled(csr, source)
    assert np.array_equal(compiled_spd.dist, numpy_spd.dist)
    assert np.array_equal(compiled_spd.sig, numpy_spd.sig)
    assert np.array_equal(compiled_spd.order_indices, numpy_spd.order_indices)
    assert len(compiled_spd.level_edges) == len(numpy_spd.level_edges)
    for (cp, cc), (rp, rc) in zip(compiled_spd.level_edges, numpy_spd.level_edges):
        assert np.array_equal(cp, rp)
        assert np.array_equal(cc, rc)


@given(
    unweighted_cases,
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_cutoff_truncation_matches_numpy(graph, source_seed, cutoff):
    """The inclusive distance cutoff truncates both rungs identically."""
    csr = graph.csr()
    source = source_seed % csr.number_of_vertices()
    numpy_spd = bfs_spd_csr(csr, source, cutoff=float(cutoff), kernel="csr")
    compiled_spd = bfs_spd_compiled(csr, source, cutoff=float(cutoff))
    assert np.array_equal(compiled_spd.dist, numpy_spd.dist)
    assert np.array_equal(compiled_spd.sig, numpy_spd.sig)
    assert np.array_equal(compiled_spd.order_indices, numpy_spd.order_indices)


@given(unweighted_cases, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_dependency_accumulation_is_bitwise_identical(graph, source_seed):
    """Both the accumulate-from-SPD and fused single-pass entry points
    reproduce the numpy delta vector bit for bit."""
    csr = graph.csr()
    source = source_seed % csr.number_of_vertices()
    reference = accumulate_dependencies_csr(bfs_spd_csr(csr, source, kernel="csr"))
    via_spd = accumulate_dependencies_compiled(bfs_spd_compiled(csr, source))
    fused = source_dependencies_compiled(csr, source)
    assert np.array_equal(via_spd, reference)
    assert np.array_equal(fused, reference)


@given(unweighted_cases, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_batch_is_bitwise_identical_to_the_wave_pair(graph, seed):
    """The batched compiled kernel equals the numpy (K, n) wave kernels,
    including the out-accumulation path."""
    csr = graph.csr()
    n = csr.number_of_vertices()
    rng = random.Random(seed)
    sources = [rng.randrange(n) for _ in range(min(6, n))]
    reference = accumulate_dependencies_batch_csr(bfs_spd_batch_csr(csr, sources))
    assert np.array_equal(batch_dependencies_compiled(csr, sources), reference)
    out_numpy = np.ones(n)
    accumulate_dependencies_batch_csr(bfs_spd_batch_csr(csr, sources), out=out_numpy)
    out_compiled = np.ones(n)
    batch_dependencies_compiled(csr, sources, out=out_compiled)
    assert np.array_equal(out_compiled, out_numpy)


weighted_cases = graph_cases.filter(lambda g: g.weighted)


def test_compiled_tolerance_matches_the_interpreter_rung():
    """The heap bit-identity promise needs both rungs to draw the relaxation
    tie band at exactly the same width."""
    from repro.shortest_paths import compiled, dijkstra

    assert compiled._EPS == dijkstra._EPSILON


@given(weighted_cases, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_dijkstra_spd_is_bitwise_identical_to_numpy(graph, source_seed):
    """The compiled heap wave reproduces dist/sig/settle-order and the CSR
    predecessor arrays of the numpy rung exactly (array_equal, not isclose)."""
    from repro.shortest_paths.compiled import dijkstra_spd_compiled

    csr = graph.csr()
    source = source_seed % csr.number_of_vertices()
    numpy_spd = dijkstra_spd_csr(csr, source, kernel="csr")
    compiled_spd = dijkstra_spd_compiled(csr, source)
    assert np.array_equal(compiled_spd.dist, numpy_spd.dist)
    assert np.array_equal(compiled_spd.sig, numpy_spd.sig)
    assert np.array_equal(compiled_spd.order_indices, numpy_spd.order_indices)
    assert np.array_equal(compiled_spd.pred_indptr, numpy_spd.pred_indptr)
    assert np.array_equal(compiled_spd.pred_indices, numpy_spd.pred_indices)


@given(weighted_cases, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_weighted_dependencies_are_bitwise_identical(graph, source_seed):
    """Fused weighted kernel, accumulate-from-SPD and the interpreter's fused
    pass all produce the same delta vector bit for bit."""
    from repro.shortest_paths.compiled import dijkstra_spd_compiled
    from repro.shortest_paths.dijkstra import dijkstra_source_dependencies_csr

    csr = graph.csr()
    source = source_seed % csr.number_of_vertices()
    reference = dijkstra_source_dependencies_csr(csr, source)
    via_sweep = accumulate_dependencies_csr(dijkstra_spd_csr(csr, source, kernel="csr"))
    via_spd = accumulate_dependencies_compiled(dijkstra_spd_compiled(csr, source))
    fused = source_dependencies_compiled(csr, source)
    assert np.array_equal(via_sweep, reference)
    assert np.array_equal(via_spd, reference)
    assert np.array_equal(fused, reference)


@given(
    weighted_cases,
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([1, 2, 4]),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_weighted_batch_is_bitwise_identical(graph, seed, threads):
    """The weighted compiled batch — at every thread count — equals the numpy
    per-row route, including the out-accumulation contract."""
    from repro.shortest_paths.batch import batch_source_dependencies

    csr = graph.csr()
    n = csr.number_of_vertices()
    rng = random.Random(seed)
    sources = [rng.randrange(n) for _ in range(min(6, n))]
    reference = batch_source_dependencies(csr, sources, kernel="csr")
    compiled_matrix = batch_dependencies_compiled(csr, sources, threads=threads)
    assert np.array_equal(compiled_matrix, reference)
    out_numpy = np.ones(n)
    batch_source_dependencies(csr, sources, out=out_numpy, kernel="csr")
    out_compiled = np.ones(n)
    batch_dependencies_compiled(csr, sources, out=out_compiled, threads=threads)
    assert np.array_equal(out_compiled, out_numpy)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_weighted_batch_spd_rows_match_single_source(seed):
    """dijkstra_spd_batch_csr rows are the single-source SPDs, per contract."""
    from repro.shortest_paths.batch import dijkstra_spd_batch_csr

    graph = _random_weighted_graph(seed % 100)
    csr = graph.csr()
    n = csr.number_of_vertices()
    sources = list(range(min(4, n)))
    for row, spd in zip(sources, dijkstra_spd_batch_csr(csr, sources)):
        single = dijkstra_spd_csr(csr, row, kernel="csr")
        assert np.array_equal(spd.dist, single.dist)
        assert np.array_equal(spd.sig, single.sig)
        assert np.array_equal(spd.order_indices, single.order_indices)


def test_weighted_distances_csr_matches_spd_and_dict_backend():
    """dijkstra_distances_csr: dist bit-equals the SPD's dist field, and the
    settle-order dict rebuild equals the dict route's settle-order dict."""
    from repro.shortest_paths.dijkstra import (
        dijkstra_distances,
        dijkstra_distances_csr,
    )

    graph = _random_weighted_graph(23)
    csr = graph.csr()
    for source in graph.vertices()[:4]:
        i = csr.index_of(source)
        dist, order = dijkstra_distances_csr(csr, i)
        assert np.array_equal(dist, dijkstra_spd_csr(csr, i, kernel="csr").dist)
        rebuilt = {csr.vertex_at(j): float(dist[j]) for j in order.tolist()}
        assert rebuilt == dijkstra_distances(graph, source)
        assert list(rebuilt) == list(dijkstra_distances(graph, source))


def test_compiled_dispatch_is_result_neutral(monkeypatch):
    """With availability forced on, kernel='compiled' drives the whole stack
    through the compiled bodies and every public result stays bitwise equal."""
    from repro.graphs import csr as csr_module

    graph = barabasi_albert_graph(30, 2, seed=11)
    target = graph.vertices()[2]
    reference_exact = betweenness_centrality(graph, backend="csr", kernel="csr")
    reference_single = betweenness_single(
        graph, target, method="uniform-source", samples=40, seed=5,
        backend="csr", kernel="csr",
    )
    monkeypatch.setattr(csr_module, "_COMPILED_OK", True)
    compiled_exact = betweenness_centrality(graph, backend="csr", kernel="compiled")
    compiled_single = betweenness_single(
        graph, target, method="uniform-source", samples=40, seed=5,
        backend="csr", kernel="compiled",
    )
    assert compiled_exact == reference_exact
    assert compiled_single.estimate == reference_single.estimate
    # Per-source entry point too, through the kernel= dispatch itself.
    csr = graph.csr()
    assert np.array_equal(
        csr_source_dependencies(csr, 0, kernel="compiled"),
        csr_source_dependencies(csr, 0, kernel="csr"),
    )


def test_weighted_compiled_dispatch_and_threads_are_result_neutral(monkeypatch):
    """With availability forced on, kernel='compiled' on a *weighted* graph
    routes the whole stack through the fused Dijkstra bodies, and the
    kernel_threads knob changes no result at any count."""
    from repro.graphs import csr as csr_module

    graph = _random_weighted_graph(41)
    target = graph.vertices()[1]
    reference_exact = betweenness_centrality(graph, backend="csr", kernel="csr")
    reference_single = betweenness_single(
        graph, target, method="uniform-source", samples=40, seed=5,
        backend="csr", kernel="csr", batch_size=8, check_connected=False,
    )
    monkeypatch.setattr(csr_module, "_COMPILED_OK", True)
    compiled_exact = betweenness_centrality(graph, backend="csr", kernel="compiled")
    assert compiled_exact == reference_exact
    for threads in (1, 2, 4):
        result = betweenness_single(
            graph, target, method="uniform-source", samples=40, seed=5,
            backend="csr", kernel="compiled", batch_size=8,
            kernel_threads=threads, check_connected=False,
        )
        assert result.estimate == reference_single.estimate, (
            f"kernel_threads={threads} drifted from the numpy rung"
        )


# ----------------------------------------------------------------------
# resolve_kernel: env override, explicit wins, warn-and-fallback
# ----------------------------------------------------------------------


def test_resolve_kernel_env_override(monkeypatch):
    from repro.errors import ConfigurationError
    from repro.graphs import csr as csr_module
    from repro.graphs.csr import resolve_kernel

    monkeypatch.setenv("REPRO_KERNEL", "csr")
    assert resolve_kernel("auto") == "csr"
    monkeypatch.setattr(csr_module, "_COMPILED_OK", True)
    assert resolve_kernel("auto") == "csr", "env override beats availability"
    monkeypatch.setenv("REPRO_KERNEL", "compiled")
    assert resolve_kernel("auto") == "compiled"
    assert resolve_kernel("csr") == "csr", "explicit kernel wins over the env var"
    monkeypatch.setenv("REPRO_KERNEL", "fpga")
    with pytest.raises(ConfigurationError):
        resolve_kernel("auto")
    with pytest.raises(ConfigurationError):
        resolve_kernel("jit")  # unknown kernel name, env var notwithstanding


def test_resolve_kernel_auto_follows_availability(monkeypatch):
    from repro.graphs import csr as csr_module
    from repro.graphs.csr import resolve_kernel

    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    monkeypatch.setattr(csr_module, "_COMPILED_OK", True)
    assert resolve_kernel("auto") == "compiled"
    assert resolve_kernel("compiled") == "compiled"
    monkeypatch.setattr(csr_module, "_COMPILED_OK", False)
    assert resolve_kernel("auto") == "csr"


def test_resolve_kernel_explicit_compiled_warns_and_falls_back(monkeypatch):
    from repro.graphs import csr as csr_module
    from repro.graphs.csr import resolve_kernel

    monkeypatch.setattr(csr_module, "_COMPILED_OK", False)
    with pytest.warns(RuntimeWarning, match="falling back to the numpy CSR kernels"):
        assert resolve_kernel("compiled") == "csr"
    # ... and the fallback changes no result: a compiled-requested exact run
    # equals the csr run even though the rung silently degraded.
    graph = barabasi_albert_graph(18, 2, seed=3)
    with pytest.warns(RuntimeWarning):
        degraded = betweenness_centrality(graph, backend="csr", kernel="compiled")
    assert degraded == betweenness_centrality(graph, backend="csr", kernel="csr")
