"""Tests for BFS shortest-path DAG construction."""

from __future__ import annotations

import pytest

from repro.errors import VertexNotFoundError
from repro.graphs import Graph, cycle_graph, grid_graph, path_graph, star_graph
from repro.shortest_paths import bfs_distances, bfs_spd, single_pair_distance


class TestBfsSpd:
    def test_path_distances(self, path5):
        spd = bfs_spd(path5, 0)
        assert spd.distance == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}

    def test_path_sigmas_all_one(self, path5):
        spd = bfs_spd(path5, 0)
        assert all(s == 1.0 for s in spd.sigma.values())

    def test_source_properties(self, barbell):
        spd = bfs_spd(barbell, 3)
        assert spd.distance[3] == 0.0
        assert spd.sigma[3] == 1.0
        assert spd.parents(3) == []

    def test_cycle_two_shortest_paths_to_antipode(self):
        g = cycle_graph(6)
        spd = bfs_spd(g, 0)
        assert spd.sigma[3] == 2.0
        assert spd.distance[3] == 3.0

    def test_grid_path_counts(self):
        # in a grid the number of shortest paths to cell (i, j) is C(i+j, i)
        g = grid_graph(4, 4)
        spd = bfs_spd(g, 0)
        assert spd.sigma[5] == 2.0  # cell (1,1)
        assert spd.sigma[15] == 20.0  # cell (3,3): C(6,3)

    def test_star_predecessors(self, star6):
        spd = bfs_spd(star6, 1)
        assert spd.parents(0) == [1]
        assert spd.parents(4) == [0]
        assert spd.distance[4] == 2.0

    def test_order_is_sorted_by_distance(self, barbell):
        spd = bfs_spd(barbell, 0)
        distances = [spd.distance[v] for v in spd.order]
        assert distances == sorted(distances)

    def test_unreachable_vertices_absent(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        spd = bfs_spd(g, 0)
        assert not spd.is_reachable(2)
        assert spd.distance_to(2) == float("inf")
        assert spd.path_count(2) == 0.0

    def test_missing_source_raises(self, path5):
        with pytest.raises(VertexNotFoundError):
            bfs_spd(path5, 42)

    def test_cutoff_limits_exploration(self, path5):
        spd = bfs_spd(path5, 0, cutoff=2)
        assert spd.is_reachable(2)
        assert not spd.is_reachable(4)

    def test_validate_passes_on_real_spd(self, small_ba):
        spd = bfs_spd(small_ba, 0)
        spd.validate()  # must not raise


class TestSpdDerived:
    def test_successors_inverse_of_predecessors(self, barbell):
        spd = bfs_spd(barbell, 0)
        children = spd.successors()
        for child, parents in spd.predecessors.items():
            for parent in parents:
                assert child in children[parent]

    def test_paths_through_middle_of_path(self, path5):
        spd = bfs_spd(path5, 0)
        through = spd.paths_through(2)
        assert through == {3: 1.0, 4: 1.0}

    def test_paths_through_source_is_empty_for_source_target(self, path5):
        spd = bfs_spd(path5, 0)
        through = spd.paths_through(2)
        assert 0 not in through and 2 not in through

    def test_paths_through_unreachable_vertex(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        spd = bfs_spd(g, 0)
        assert spd.paths_through(2) == {}

    def test_pair_dependencies_cycle(self):
        g = cycle_graph(6)
        spd = bfs_spd(g, 0)
        deps = spd.pair_dependencies(1)
        # vertex 1 lies on one of the two shortest 0-3 paths and the single 0-2 path
        assert deps[2] == pytest.approx(1.0)
        assert deps[3] == pytest.approx(0.5)

    def test_reachable_count(self, barbell):
        spd = bfs_spd(barbell, 0)
        assert spd.number_of_reachable() == barbell.number_of_vertices()


class TestBfsHelpers:
    def test_bfs_distances_matches_spd(self, grid4x4):
        spd = bfs_spd(grid4x4, 0)
        assert bfs_distances(grid4x4, 0) == spd.distance

    def test_single_pair_distance(self, path5):
        assert single_pair_distance(path5, 0, 4) == 4.0
        assert single_pair_distance(path5, 2, 2) == 0.0

    def test_single_pair_distance_unreachable(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(5)
        assert single_pair_distance(g, 0, 5) == float("inf")

    def test_single_pair_missing_vertex(self, path5):
        with pytest.raises(VertexNotFoundError):
            single_pair_distance(path5, 0, 42)
