"""Tests for the dataset registry and the benchmark workload builders."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DATASETS,
    SIZES,
    dataset_names,
    dataset_table,
    load_dataset,
    pick_reference_set,
    pick_targets,
    positive_betweenness_vertices,
)
from repro.errors import ConfigurationError, DatasetError
from repro.exact import betweenness_centrality
from repro.graphs.components import is_connected


class TestRegistry:
    def test_dataset_names_sorted_and_nonempty(self):
        names = dataset_names()
        assert names == sorted(names)
        assert len(names) >= 8

    def test_every_dataset_builds_tiny_and_connected(self):
        for name in dataset_names():
            graph = load_dataset(name, size="tiny", seed=0)
            assert graph.number_of_vertices() > 10
            assert is_connected(graph)

    def test_small_larger_than_tiny(self):
        for name in ("email", "collaboration", "road"):
            tiny = load_dataset(name, size="tiny", seed=0)
            small = load_dataset(name, size="small", seed=0)
            assert small.number_of_vertices() > tiny.number_of_vertices()

    def test_builds_are_reproducible(self):
        a = load_dataset("collaboration", size="tiny", seed=5)
        b = load_dataset("collaboration", size="tiny", seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ_for_random_families(self):
        a = load_dataset("p2p", size="tiny", seed=1)
        b = load_dataset("p2p", size="tiny", seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("does-not-exist")

    def test_unknown_size(self):
        with pytest.raises(DatasetError):
            load_dataset("email", size="huge")

    def test_dataset_table_rows(self):
        rows = dataset_table()
        assert len(rows) == len(DATASETS)
        assert all({"name", "family", "stands_in_for", "description"} <= set(r) for r in rows)

    def test_sizes_constant(self):
        assert SIZES == ("tiny", "small", "medium")


class TestWorkloadBuilders:
    def test_positive_betweenness_vertices(self):
        graph = load_dataset("barbell", size="tiny", seed=0)
        positive = positive_betweenness_vertices(graph)
        exact = betweenness_centrality(graph)
        assert all(exact[v] > 0.0 for v in positive)

    def test_pick_targets_structure(self):
        graph = load_dataset("caveman", size="tiny", seed=0)
        targets = pick_targets(graph)
        assert set(targets) == {"high", "median", "low"}
        exact = betweenness_centrality(graph)
        assert exact[targets["high"]] >= exact[targets["median"]] >= exact[targets["low"]]
        assert exact[targets["low"]] > 0.0

    def test_pick_targets_no_positive_vertices(self):
        from repro.graphs import complete_graph

        with pytest.raises(ConfigurationError):
            pick_targets(complete_graph(5))

    def test_pick_reference_set_size_and_membership(self):
        graph = load_dataset("caveman", size="tiny", seed=0)
        refs = pick_reference_set(graph, 5)
        assert len(refs) == len(set(refs)) == 5
        exact = betweenness_centrality(graph)
        assert all(exact[v] > 0.0 for v in refs)

    def test_pick_reference_set_includes_extremes(self):
        graph = load_dataset("barbell", size="tiny", seed=0)
        positive = positive_betweenness_vertices(graph)
        ranked = sorted(positive, key=positive.get, reverse=True)
        refs = pick_reference_set(graph, 3)
        assert ranked[0] in refs
        assert ranked[-1] in refs

    def test_pick_reference_set_validation(self):
        graph = load_dataset("barbell", size="tiny", seed=0)
        with pytest.raises(ConfigurationError):
            pick_reference_set(graph, 1)
        with pytest.raises(ConfigurationError):
            pick_reference_set(graph, 10_000)
