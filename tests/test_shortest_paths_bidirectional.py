"""Tests for bidirectional BFS and uniform shortest-path sampling."""

from __future__ import annotations

import collections

import pytest

from repro.graphs import Graph, cycle_graph, grid_graph, path_graph
from repro.shortest_paths import (
    all_shortest_paths,
    bfs_spd,
    bidirectional_shortest_path_info,
    sample_shortest_path,
)


class TestBidirectionalInfo:
    def test_same_vertex(self, path5):
        assert bidirectional_shortest_path_info(path5, 2, 2) == (0.0, 1.0)

    def test_path_graph(self, path5):
        d, sigma = bidirectional_shortest_path_info(path5, 0, 4)
        assert d == 4.0 and sigma == 1.0

    def test_cycle_antipode_has_two_paths(self):
        g = cycle_graph(6)
        d, sigma = bidirectional_shortest_path_info(g, 0, 3)
        assert d == 3.0 and sigma == 2.0

    def test_grid_counts_match_full_bfs(self):
        g = grid_graph(4, 4)
        spd = bfs_spd(g, 0)
        for target in [5, 10, 15, 3, 12]:
            d, sigma = bidirectional_shortest_path_info(g, 0, target)
            assert d == spd.distance[target]
            assert sigma == spd.sigma[target]

    def test_disconnected_pair(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        d, sigma = bidirectional_shortest_path_info(g, 0, 3)
        assert d == float("inf") and sigma == 0.0

    def test_random_graph_against_bfs(self, small_er):
        spd = bfs_spd(small_er, 0)
        vertices = [v for v in small_er.vertices() if v != 0][:8]
        for t in vertices:
            d, sigma = bidirectional_shortest_path_info(small_er, 0, t)
            assert d == spd.distance_to(t)
            assert sigma == spd.path_count(t)


class TestAllShortestPaths:
    def test_single_path(self, path5):
        paths = all_shortest_paths(path5, 0, 3)
        assert paths == [[0, 1, 2, 3]]

    def test_two_paths_in_cycle(self):
        g = cycle_graph(6)
        paths = all_shortest_paths(g, 0, 3)
        assert len(paths) == 2
        assert all(len(p) == 4 for p in paths)

    def test_same_endpoints(self, path5):
        assert all_shortest_paths(path5, 1, 1) == [[1]]

    def test_disconnected(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        assert all_shortest_paths(g, 0, 2) == []

    def test_path_count_matches_sigma(self, grid4x4):
        spd = bfs_spd(grid4x4, 0)
        assert len(all_shortest_paths(grid4x4, 0, 15)) == spd.sigma[15]


class TestSampleShortestPath:
    def test_sampled_path_is_shortest(self, grid4x4):
        spd = bfs_spd(grid4x4, 0)
        path = sample_shortest_path(grid4x4, 0, 15, seed=1)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) - 1 == spd.distance[15]
        for a, b in zip(path, path[1:]):
            assert grid4x4.has_edge(a, b)

    def test_disconnected_returns_none(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        assert sample_shortest_path(g, 0, 2, seed=1) is None

    def test_same_endpoints(self, path5):
        assert sample_shortest_path(path5, 3, 3, seed=1) == [3]

    def test_sampling_is_close_to_uniform(self):
        # Cycle of 6: exactly two shortest 0->3 paths; each should appear
        # roughly half the time.
        g = cycle_graph(6)
        counts = collections.Counter()
        import random

        rng = random.Random(0)
        for _ in range(400):
            path = tuple(sample_shortest_path(g, 0, 3, seed=rng))
            counts[path] += 1
        assert len(counts) == 2
        ratio = min(counts.values()) / max(counts.values())
        assert ratio > 0.7

    def test_weighted_graph_sampling(self, weighted_diamond):
        path = sample_shortest_path(weighted_diamond, 0, 3, seed=5)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 3  # the two-hop routes, never the 0-4-3 route
