"""Tests for exact betweenness (Brandes), cross-validated against closed forms and networkx."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exact import betweenness_centrality, normalization_factor
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.io import to_networkx


def networkx_paper_normalized(graph):
    """Exact scores from networkx converted to the paper's 1/(n(n-1)) scale."""
    import networkx as nx

    n = graph.number_of_vertices()
    raw = nx.betweenness_centrality(to_networkx(graph), normalized=False)
    return {v: 2.0 * raw[v] / (n * (n - 1)) for v in graph.vertices()}


class TestClosedForms:
    def test_path_graph(self, path5):
        scores = betweenness_centrality(path5, normalization="count")
        # Interior vertex i of a path lies on (i)(n-1-i) unordered pairs.
        assert scores[0] == pytest.approx(0.0)
        assert scores[1] == pytest.approx(3.0)
        assert scores[2] == pytest.approx(4.0)
        assert scores[3] == pytest.approx(3.0)
        assert scores[4] == pytest.approx(0.0)

    def test_star_center(self, star6):
        scores = betweenness_centrality(star6, normalization="count")
        assert scores[0] == pytest.approx(15.0)  # C(6, 2) pairs of leaves
        assert all(scores[v] == 0.0 for v in range(1, 7))

    def test_complete_graph_all_zero(self):
        scores = betweenness_centrality(complete_graph(6))
        assert all(s == 0.0 for s in scores.values())

    def test_cycle_graph_uniform(self):
        scores = betweenness_centrality(cycle_graph(7))
        values = list(scores.values())
        assert all(v == pytest.approx(values[0]) for v in values)
        assert values[0] > 0.0

    def test_paper_normalization_of_star(self, star6):
        scores = betweenness_centrality(star6, normalization="paper")
        n = 7
        assert scores[0] == pytest.approx(2.0 * 15.0 / (n * (n - 1)))

    def test_barbell_bridge_higher_than_clique(self, barbell):
        scores = betweenness_centrality(barbell)
        assert scores[5] > scores[0]
        assert scores[6] > scores[0]


class TestAgainstNetworkx:
    @pytest.mark.parametrize("fixture", ["small_er", "small_ba", "small_ws", "grid4x4"])
    def test_matches_networkx(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        ours = betweenness_centrality(graph, normalization="paper")
        theirs = networkx_paper_normalized(graph)
        for v in graph.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-12)

    def test_pairs_normalization_matches_networkx_normalized(self, small_ba):
        import networkx as nx

        ours = betweenness_centrality(small_ba, normalization="pairs")
        theirs = nx.betweenness_centrality(to_networkx(small_ba), normalized=True)
        for v in small_ba.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-12)

    def test_weighted_graph_matches_networkx(self, weighted_diamond):
        import networkx as nx

        ours = betweenness_centrality(weighted_diamond, normalization="count")
        theirs = nx.betweenness_centrality(
            to_networkx(weighted_diamond), normalized=False, weight="weight"
        )
        for v in weighted_diamond.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)


class TestOptions:
    def test_unknown_normalization(self, path5):
        with pytest.raises(ConfigurationError):
            betweenness_centrality(path5, normalization="bogus")

    def test_normalization_factor_values(self):
        assert normalization_factor(10, "paper") == pytest.approx(1.0 / 90.0)
        assert normalization_factor(10, "pairs") == pytest.approx(1.0 / 72.0)
        assert normalization_factor(10, "count") == 0.5
        assert normalization_factor(10, "count", directed=True) == 1.0

    def test_normalization_factor_degenerate_sizes(self):
        assert normalization_factor(1, "paper") == 0.0
        assert normalization_factor(2, "pairs") == 0.0

    def test_restricted_sources_sum(self, path5):
        # Using every vertex as a source explicitly must equal the default.
        full = betweenness_centrality(path5)
        restricted = betweenness_centrality(path5, sources=path5.vertices())
        assert full == restricted

    def test_subset_of_sources_is_partial(self, path5):
        partial = betweenness_centrality(path5, normalization="count", sources=[0])
        # only pairs (0, t) are counted: vertex 2 lies on pairs (0,3) and (0,4)
        assert partial[2] == pytest.approx(1.0)  # count normalization halves ordered sum

    def test_directed_graph(self):
        g = Graph(directed=True)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        scores = betweenness_centrality(g, normalization="count")
        assert scores[1] == pytest.approx(1.0)
        assert scores[0] == 0.0 and scores[2] == 0.0
