"""Tests for Dijkstra shortest-path DAG construction on weighted graphs."""

from __future__ import annotations

import pytest

from repro.errors import NegativeWeightError, VertexNotFoundError
from repro.graphs import Graph
from repro.shortest_paths import bfs_spd, dijkstra_distances, dijkstra_spd


def weighted_triangle() -> Graph:
    g = Graph(weighted=True)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(0, 2, 3.0)
    return g


class TestDijkstraSpd:
    def test_prefers_cheaper_two_hop_path(self):
        spd = dijkstra_spd(weighted_triangle(), 0)
        assert spd.distance[2] == 2.0
        assert spd.parents(2) == [1]

    def test_equal_weight_paths_counted(self, weighted_diamond):
        spd = dijkstra_spd(weighted_diamond, 0)
        # two paths of length 2 via vertices 1 and 2; the path via 4 costs 3.5
        assert spd.distance[3] == 2.0
        assert spd.sigma[3] == 2.0
        assert sorted(spd.parents(3)) == [1, 2]

    def test_matches_bfs_on_unit_weights(self, barbell):
        weighted = Graph(weighted=True)
        for u, v in barbell.edges():
            weighted.add_edge(u, v, 1.0)
        spd_w = dijkstra_spd(weighted, 0)
        spd_u = bfs_spd(barbell, 0)
        assert spd_w.distance == spd_u.distance
        assert spd_w.sigma == spd_u.sigma

    def test_source_properties(self, weighted_diamond):
        spd = dijkstra_spd(weighted_diamond, 0)
        assert spd.distance[0] == 0.0
        assert spd.sigma[0] == 1.0

    def test_order_sorted_by_distance(self, weighted_diamond):
        spd = dijkstra_spd(weighted_diamond, 0)
        distances = [spd.distance[v] for v in spd.order]
        assert distances == sorted(distances)

    def test_unreachable_vertex(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, 1.0)
        g.add_vertex(9)
        spd = dijkstra_spd(g, 0)
        assert not spd.is_reachable(9)

    def test_missing_source(self, weighted_diamond):
        with pytest.raises(VertexNotFoundError):
            dijkstra_spd(weighted_diamond, 99)

    def test_negative_weight_rejected_at_traversal(self):
        # Build an unweighted-flag graph, then force a bad weight through the
        # weighted code path to check the guard inside Dijkstra itself.
        g = Graph(weighted=True)
        g.add_edge(0, 1, 1.0)
        g._adj[0][1] = -1.0  # bypass add_edge validation deliberately
        g._adj[1][0] = -1.0
        with pytest.raises(NegativeWeightError):
            dijkstra_spd(g, 0)

    def test_validate_on_weighted_spd(self, weighted_diamond):
        dijkstra_spd(weighted_diamond, 0).validate()

    def test_dijkstra_distances_helper(self, weighted_diamond):
        distances = dijkstra_distances(weighted_diamond, 0)
        assert distances[3] == 2.0
        assert distances[4] == 0.5


class TestAgainstNetworkx:
    def test_random_weighted_graph_distances(self):
        import networkx as nx
        import random

        rng = random.Random(4)
        g = Graph(weighted=True)
        nx_graph = nx.Graph()
        # random connected weighted graph on 20 vertices
        for v in range(1, 20):
            u = rng.randrange(v)
            w = rng.choice([0.5, 1.0, 1.5, 2.0])
            g.add_edge(u, v, w)
            nx_graph.add_edge(u, v, weight=w)
        for _ in range(20):
            u, v = rng.sample(range(20), 2)
            if not g.has_edge(u, v):
                w = rng.choice([0.5, 1.0, 1.5, 2.0])
                g.add_edge(u, v, w)
                nx_graph.add_edge(u, v, weight=w)
        ours = dijkstra_distances(g, 0)
        theirs = nx.single_source_dijkstra_path_length(nx_graph, 0)
        for v in theirs:
            assert ours[v] == pytest.approx(theirs[v])
