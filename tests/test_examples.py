"""Smoke tests: every example script must run end-to-end and produce its key output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ("chain diagnostics", "theoretical guidance"),
    "community_core_ranking.py": ("estimated ranking", "positional agreement"),
    "manet_routing.py": ("estimated relay ranking", "nodes reachable within"),
    "community_detection.py": ("communities", "planted block"),
    "separator_analysis.py": ("balanced separator", "Theorem 2"),
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs_and_prints_expected_sections(name):
    output = run_example(name)
    for marker in CASES[name]:
        assert marker in output, f"{name}: expected {marker!r} in output"


def test_examples_directory_contains_at_least_three_scripts():
    scripts = list(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
