"""End-to-end estimation on weighted graphs.

The paper's algorithms apply unchanged to weighted graphs with strictly
positive weights (the per-sample cost becomes O(|E| + |V| log |V|) through
Dijkstra).  These tests run the exact algorithms and the samplers on small
weighted graphs and cross-check against networkx.
"""

from __future__ import annotations

import random

import pytest

from repro.centrality.api import SINGLE_VERTEX_METHODS, betweenness_single
from repro.exact import betweenness_centrality, betweenness_of_vertex
from repro.graphs import Graph
from repro.graphs.io import to_networkx
from repro.mcmc import JointSpaceMHSampler, SingleSpaceMHSampler, mu_of_vertex
from repro.samplers import DistanceBasedSampler, UniformSourceSampler


def weighted_barbell() -> Graph:
    """Two triangles joined by a long heavy bridge through vertex 6."""
    graph = Graph(weighted=True)
    for u, v in [(0, 1), (1, 2), (0, 2)]:
        graph.add_edge(u, v, 1.0)
    for u, v in [(3, 4), (4, 5), (3, 5)]:
        graph.add_edge(u, v, 1.0)
    graph.add_edge(2, 6, 2.5)
    graph.add_edge(6, 3, 2.5)
    return graph


@pytest.fixture
def weighted_random() -> Graph:
    rng = random.Random(13)
    graph = Graph(weighted=True)
    for v in range(1, 20):
        graph.add_edge(rng.randrange(v), v, rng.choice([0.5, 1.0, 2.0]))
    for _ in range(15):
        u, v = rng.sample(range(20), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.choice([0.5, 1.0, 2.0]))
    return graph


class TestWeightedExact:
    def test_weighted_barbell_bridge_vertex(self):
        graph = weighted_barbell()
        scores = betweenness_centrality(graph, normalization="count")
        # vertex 6 carries all 3x3 cross pairs; vertex 2 carries the pairs
        # between its two triangle mates and the far side plus vertex 6.
        assert scores[6] == pytest.approx(9.0)
        assert scores[2] == pytest.approx(8.0)
        assert scores[0] == 0.0

    def test_matches_networkx_on_random_weighted_graph(self, weighted_random):
        import networkx as nx

        ours = betweenness_centrality(weighted_random, normalization="count")
        theirs = nx.betweenness_centrality(
            to_networkx(weighted_random), weight="weight", normalized=False
        )
        for v in weighted_random.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)

    def test_weights_change_the_answer(self):
        # Same topology, different weights: the heavy direct edge pushes
        # traffic through the two-hop route and gives the middle vertex
        # positive betweenness.
        light = Graph(weighted=True)
        heavy = Graph(weighted=True)
        for graph, direct in ((light, 1.0), (heavy, 10.0)):
            graph.add_edge(0, 1, 1.0)
            graph.add_edge(1, 2, 1.0)
            graph.add_edge(0, 2, direct)
        assert betweenness_of_vertex(light, 1, normalization="count") == 0.0
        assert betweenness_of_vertex(heavy, 1, normalization="count") == 1.0


class TestWeightedSamplers:
    def test_mh_unbiased_on_weighted_barbell(self):
        graph = weighted_barbell()
        exact = betweenness_of_vertex(graph, 6)
        result = SingleSpaceMHSampler(estimator="proposal").estimate(graph, 6, 400, seed=2)
        assert result.estimate == pytest.approx(exact, abs=0.1)

    def test_uniform_source_full_enumeration_weighted(self, weighted_random):
        sampler = UniformSourceSampler(with_replacement=False)
        n = weighted_random.number_of_vertices()
        result = sampler.estimate_all(weighted_random, n, seed=1)
        exact = betweenness_centrality(weighted_random)
        for v in weighted_random.vertices():
            assert result[v] == pytest.approx(exact[v])

    def test_distance_based_sampler_weighted(self):
        graph = weighted_barbell()
        exact = betweenness_of_vertex(graph, 6)
        result = DistanceBasedSampler().estimate(graph, 6, 400, seed=3)
        assert result.estimate == pytest.approx(exact, abs=0.1)

    def test_mu_and_joint_chain_weighted(self):
        graph = weighted_barbell()
        assert mu_of_vertex(graph, 6) >= 1.0
        estimate = JointSpaceMHSampler().estimate_relative(graph, [6, 2], 1500, seed=4)
        # exact ratio BC(2)/BC(6) = 8/9 (count normalisation cancels)
        assert estimate.ratios[(2, 6)] == pytest.approx(8.0 / 9.0, rel=0.2)


class TestWeightedBackendIdentity:
    """Every registered estimator must consume the same rng stream on both
    backends for weighted graphs — the CSR Dijkstra routes (sampler SPD
    passes, the distance-based mass function) rebuild their candidate
    orderings in settle order, so fixed-seed estimates pin bit-for-bit."""

    @pytest.mark.parametrize("method", sorted(SINGLE_VERTEX_METHODS))
    def test_fixed_seed_estimates_match_across_backends(self, method, weighted_random):
        target = weighted_random.vertices()[3]
        dict_result = betweenness_single(
            weighted_random, target, method=method, samples=40, seed=11,
            backend="dict", check_connected=False,
        )
        csr_result = betweenness_single(
            weighted_random, target, method=method, samples=40, seed=11,
            backend="csr", check_connected=False,
        )
        assert dict_result.estimate == pytest.approx(
            csr_result.estimate, rel=1e-9, abs=1e-12
        )
