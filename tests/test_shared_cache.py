"""Tests for the cross-process shared dependency-vector cache.

Three layers of promises:

1. **Store protocol** — :class:`repro.execution.shared_cache.SharedDependencyStore`
   is a fill-once arena: put/get round-trip bit-exactly, duplicate puts are
   no-ops, a full arena refuses new rows without corrupting existing ones,
   and the store survives pickling into another process by re-attaching to
   the same segment.
2. **Oracle integration** — a :class:`~repro.mcmc.estimates.DependencyOracle`
   with a store attached returns vectors bit-identical to a private oracle
   on prefetch-heavy and eviction-heavy access patterns, serves another
   oracle's published vectors without re-running Brandes passes, and falls
   back gracefully (dict backend, unsupported platforms).
3. **Driver determinism** — the multi-chain pooled estimates with
   ``shared_cache=True`` are bit-identical to the private-cache runs over
   the whole ``n_jobs`` × ``n_chains`` grid, survive arena-capacity
   overflow unchanged, and actually eliminate duplicated passes.
"""

from __future__ import annotations

import multiprocessing
import warnings

import pytest

from repro.centrality.api import betweenness_single, relative_betweenness
from repro.errors import ConfigurationError
from repro.execution import resolve_plan, resolve_shared_cache
from repro.execution.shared_cache import (
    SharedDependencyStore,
    create_shared_store,
    shared_memory_available,
)
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np
from repro.mcmc.estimates import DependencyOracle
from repro.mcmc.multichain import MultiChainJointSampler, MultiChainMHSampler

pytestmark = pytest.mark.skipif(
    np is None or not shared_memory_available(),
    reason="the shared dependency cache requires numpy and working shared memory",
)

JOBS_GRID = (1, 2, 4)
CHAINS_GRID = (1, 2, 4)


@pytest.fixture
def graph():
    return barabasi_albert_graph(40, 2, seed=3)


@pytest.fixture
def store(graph):
    s = SharedDependencyStore(graph.number_of_vertices(), 40)
    yield s
    s.destroy()


# ----------------------------------------------------------------------
# Store protocol
# ----------------------------------------------------------------------


def test_shared_store_put_get_roundtrip(store):
    vector = np.arange(store.num_vertices, dtype=np.float64)
    assert store.get(5) is None
    assert not store.contains(5)
    assert store.put(5, vector)
    assert store.contains(5)
    out = store.get(5)
    assert np.array_equal(out, vector)
    # get() hands back a private copy, not a view into the arena.
    out[0] = -1.0
    assert np.array_equal(store.get(5), vector)
    assert store.published() == 1


def test_shared_store_duplicate_put_keeps_the_first_row(store):
    first = np.full(store.num_vertices, 1.5)
    second = np.full(store.num_vertices, 2.5)
    assert store.put(7, first)
    # The racing loser's vector is bit-identical in real runs; the protocol
    # promise is simply that the slot is claimed once.
    assert store.put(7, second)
    assert store.published() == 1
    assert np.array_equal(store.get(7), first)


def test_shared_store_refuses_rows_past_capacity(graph):
    store = SharedDependencyStore(graph.number_of_vertices(), 2)
    try:
        vec = np.ones(store.num_vertices)
        assert store.put(0, vec)
        assert store.put(1, 2 * vec)
        assert not store.put(2, 3 * vec), "a full arena must refuse new rows"
        assert store.stats() == {
            "capacity": 2,
            "published": 2,
            "tombstoned": 0,
            "full": True,
        }
        # Existing rows stay intact and readable after the refusal.
        assert np.array_equal(store.get(0), vec)
        assert np.array_equal(store.get(1), 2 * vec)
        assert store.get(2) is None
    finally:
        store.destroy()


def test_shared_store_compact_reclaims_tombstoned_capacity():
    store = SharedDependencyStore(6, 4)
    try:
        for i in range(4):
            store.put(i, np.full(6, float(i)))
        assert not store.put(4, np.zeros(6)), "arena starts full"
        assert store.invalidate_sources([0, 2]) == 2
        assert store.compact() == 2
        assert store.compact() == 0, "a compacted arena has nothing to reclaim"
        assert store.tombstoned() == 0
        assert store.published() == 2
        # Surviving rows keep their bytes and their claims...
        assert np.array_equal(store.get(1), np.full(6, 1.0))
        assert np.array_equal(store.get(3), np.full(6, 3.0))
        assert store.get(0) is None
        # ...and the reclaimed capacity accepts new rows again.
        assert store.put(4, np.full(6, 4.0))
        assert store.put(5, np.full(6, 5.0))
        assert np.array_equal(store.get(4), np.full(6, 4.0))
        assert store.stats() == {
            "capacity": 4,
            "published": 4,
            "tombstoned": 0,
            "full": True,
        }
    finally:
        store.destroy()


def _spawned_publisher(store, index: int, value: float) -> None:
    """Child-process body of the spawn test below (must be module-level)."""
    store.put(index, np.full(store.num_vertices, value))
    store.close()


def test_shared_store_travels_to_a_spawned_process():
    """The pickling contract end to end: a *spawned* worker (the start
    method that really pickles process arguments — a process-shared lock may
    only cross that channel) re-attaches to the same segment and its writes
    are visible to the creator."""
    ctx = multiprocessing.get_context("spawn")
    store = SharedDependencyStore(8, 4, context=ctx)
    try:
        child = ctx.Process(target=_spawned_publisher, args=(store, 3, 2.5))
        child.start()
        child.join(60)
        assert child.exitcode == 0
        assert np.array_equal(store.get(3), np.full(8, 2.5))
    finally:
        store.destroy()


def test_shared_store_validates_its_arguments():
    with pytest.raises(ConfigurationError):
        SharedDependencyStore(0, 4)
    with pytest.raises(ConfigurationError):
        SharedDependencyStore(4, 0)


def test_shared_store_create_warns_and_falls_back_without_support(monkeypatch):
    import repro.execution.shared_cache as shared_cache

    monkeypatch.setattr(shared_cache, "_shared_memory", None)
    assert not shared_cache.shared_memory_available()
    with pytest.warns(RuntimeWarning, match="falling back to private"):
        assert create_shared_store(10, 10) is None


# ----------------------------------------------------------------------
# Oracle integration
# ----------------------------------------------------------------------


def test_shared_cache_prefetch_heavy_vectors_bit_identical(graph, store):
    """Prefetch-heavy run: a store-backed oracle returns the private
    oracle's vectors bit for bit (the determinism bedrock)."""
    shared = DependencyOracle(graph, backend="csr", batch_size=8, shared_store=store)
    private = DependencyOracle(graph, backend="csr", batch_size=8)
    vertices = graph.vertices()
    shared.prefetch(vertices[:20])
    private.prefetch(vertices[:20])
    r = vertices[-1]
    for s in vertices:
        assert shared.dependency(s, r) == private.dependency(s, r)


def test_shared_cache_eviction_heavy_vectors_bit_identical(graph, store):
    """Eviction-heavy run: a tightly bounded private cache forces constant
    store traffic and recomputation; the values never move."""
    shared = DependencyOracle(
        graph, backend="csr", cache_size=2, batch_size=4, shared_store=store
    )
    private = DependencyOracle(graph, backend="csr", batch_size=4)
    vertices = graph.vertices()
    r = vertices[-1]
    for start in range(0, len(vertices), 6):
        block = vertices[start : start + 6]
        shared.prefetch(block)
        for s in block:
            assert shared.dependency(s, r) == private.dependency(s, r)
    for s in vertices:
        assert shared.dependency(s, r) == private.dependency(s, r)


def test_shared_cache_second_oracle_reads_without_passes(graph, store):
    """The point of the arena: a pass paid by one oracle is a hit for every
    other oracle attached to the same store."""
    writer = DependencyOracle(graph, backend="csr", batch_size=8, shared_store=store)
    reader = DependencyOracle(graph, backend="csr", batch_size=8, shared_store=store)
    vertices = graph.vertices()
    r = vertices[-1]
    writer.prefetch(vertices[:10])
    for s in vertices[:10]:
        reader.dependency(s, r)
    assert reader.evaluations == 0
    assert reader.shared_hits == 10
    assert reader.hit_rate() == 1.0
    # And prefetch itself is served from the store, not recomputed.
    another = DependencyOracle(graph, backend="csr", batch_size=8, shared_store=store)
    assert another.prefetch(vertices[:10]) == 0
    assert another.shared_hits == 10


def test_shared_cache_dict_backend_warns_and_uses_private_cache(graph, store):
    with pytest.warns(RuntimeWarning, match="requires the CSR backend"):
        oracle = DependencyOracle(graph, backend="dict", shared_store=store)
    r = graph.vertices()[-1]
    oracle.dependency(graph.vertices()[0], r)
    assert oracle.shared_store is None
    assert oracle.shared_hits == 0
    assert store.published() == 0


def test_shared_cache_rejects_a_store_sized_for_another_graph(graph):
    store = SharedDependencyStore(graph.number_of_vertices() + 1, 4)
    try:
        with pytest.raises(ConfigurationError, match="sized for"):
            DependencyOracle(graph, backend="csr", shared_store=store)
    finally:
        store.destroy()


# ----------------------------------------------------------------------
# Multi-chain drivers
# ----------------------------------------------------------------------


def test_shared_cache_pooled_estimates_bit_identical_over_the_grid(graph):
    """The acceptance grid: shared_cache=True never changes the pooled
    estimate for any (n_jobs, n_chains) at a fixed seed."""
    r = graph.vertices()[0]
    for n_chains in CHAINS_GRID:
        reference = MultiChainMHSampler(
            n_chains=n_chains, backend="csr", batch_size=8
        ).estimate(graph, r, 48, seed=11)
        assert reference.diagnostics["shared_cache"] is False
        for n_jobs in JOBS_GRID:
            shared = MultiChainMHSampler(
                n_chains=n_chains,
                n_jobs=n_jobs,
                backend="csr",
                batch_size=8,
                shared_cache=True,
            ).estimate(graph, r, 48, seed=11)
            assert shared.estimate == reference.estimate, (n_jobs, n_chains)
            assert shared.diagnostics["shared_cache"] is True


def test_shared_cache_chain_states_match_private_runs(graph):
    """Stronger than the pooled read-out: the full per-chain trajectories
    are unchanged by cache sharing."""
    r = graph.vertices()[0]
    private = MultiChainMHSampler(n_chains=4, backend="csr", batch_size=8).run_chains(
        graph, r, 48, seed=5
    )
    shared = MultiChainMHSampler(
        n_chains=4, n_jobs=2, backend="csr", batch_size=8, shared_cache=True
    ).run_chains(graph, r, 48, seed=5)
    for a, b in zip(private.chains, shared.chains):
        assert a.states == b.states


def test_shared_cache_arena_overflow_is_result_neutral(graph):
    """A deliberately tiny arena overflows immediately; chains must not
    notice (the store refuses rows, private caches absorb the rest)."""
    r = graph.vertices()[0]
    reference = MultiChainMHSampler(n_chains=4, backend="csr", batch_size=8).estimate(
        graph, r, 48, seed=9
    )
    tiny = MultiChainMHSampler(
        n_chains=4,
        n_jobs=2,
        backend="csr",
        batch_size=8,
        shared_cache=True,
        shared_cache_capacity=2,
    ).estimate(graph, r, 48, seed=9)
    assert tiny.estimate == reference.estimate
    stats = tiny.diagnostics["shared_cache_stats"]
    assert stats["full"] and stats["capacity"] == 2


def test_shared_cache_deduplicates_passes_across_workers(graph):
    """The receipt property at test scale: total Brandes passes across
    workers collapse toward the run's unique-source count."""
    r = graph.vertices()[0]
    # n_jobs=1 shares one in-process oracle across all chains, so its
    # evaluation count *is* the number of unique sources the run touches.
    unique = MultiChainMHSampler(n_chains=4, backend="csr", batch_size=8).estimate(
        graph, r, 64, seed=2
    )
    private = MultiChainMHSampler(
        n_chains=4, n_jobs=4, backend="csr", batch_size=8
    ).estimate(graph, r, 64, seed=2)
    shared = MultiChainMHSampler(
        n_chains=4, n_jobs=4, backend="csr", batch_size=8, shared_cache=True
    ).estimate(graph, r, 64, seed=2)
    unique_count = unique.diagnostics["evaluations"]
    assert private.diagnostics["evaluations"] > unique_count, (
        "private per-worker caches should duplicate cross-chain passes on "
        "this workload (otherwise the test graph is too small to matter)"
    )
    assert shared.diagnostics["evaluations"] >= unique_count
    # Benign races (two workers missing the same source before either
    # publishes) add a schedule-dependent handful of duplicate passes, and
    # at this 40-vertex scale a loaded machine can push them past the tight
    # receipt ratio — the strict "<= 1.2 x unique" acceptance bound is
    # asserted at receipt scale in benchmarks/bench_e13_shared_cache.py,
    # where the margin is wide (1.008 observed).  Here the robust property
    # is strict deduplication over the private-cache run.
    assert shared.diagnostics["evaluations"] < private.diagnostics["evaluations"]
    assert shared.estimate == private.estimate == unique.estimate


def test_shared_cache_joint_driver_identical_and_deduplicated(graph):
    refs = graph.vertices()[:3]
    reference = MultiChainJointSampler(
        n_chains=4, backend="csr", batch_size=4
    ).estimate_relative(graph, refs, 64, seed=13)
    shared = MultiChainJointSampler(
        n_chains=4, n_jobs=2, backend="csr", batch_size=4, shared_cache=True
    ).estimate_relative(graph, refs, 64, seed=13)
    private = MultiChainJointSampler(
        n_chains=4, n_jobs=2, backend="csr", batch_size=4
    ).estimate_relative(graph, refs, 64, seed=13)
    key = lambda e: sorted((str(k), v) for k, v in e.ratios.items() if v == v)
    assert key(shared) == key(reference) == key(private)
    assert shared.diagnostics["shared_cache"] is True
    # Same schedule-robust property as the single-space dedup test: strictly
    # fewer passes than the private-cache workers (the tight receipt ratio
    # lives in bench_e13 at receipt scale).
    assert (
        reference.diagnostics["evaluations"]
        <= shared.diagnostics["evaluations"]
        < private.diagnostics["evaluations"]
    )


def test_shared_cache_adaptive_mode_shares_across_rounds(graph):
    """The adaptive driver keeps one arena alive across its checkpointed
    rounds (each round re-forks workers; the arena is what survives)."""
    r = graph.vertices()[0]
    kwargs = dict(
        n_chains=4, backend="csr", batch_size=8, rhat_target=1.2, check_interval=8
    )
    reference = MultiChainMHSampler(**kwargs).estimate(graph, r, 96, seed=21)
    shared = MultiChainMHSampler(**kwargs, n_jobs=2, shared_cache=True).estimate(
        graph, r, 96, seed=21
    )
    assert shared.estimate == reference.estimate
    assert shared.diagnostics["rounds"] == reference.diagnostics["rounds"]
    assert shared.diagnostics["shared_cache"] is True


def test_shared_cache_driver_falls_back_when_store_unavailable(graph, monkeypatch):
    """No shared memory on the platform: the run completes on private
    caches with identical results and an honest diagnostics stamp."""
    import repro.mcmc.multichain as multichain

    def no_store(num_vertices, capacity):
        warnings.warn("simulated: no shared memory", RuntimeWarning)
        return None

    monkeypatch.setattr(multichain, "create_shared_store", no_store)
    r = graph.vertices()[0]
    reference = MultiChainMHSampler(n_chains=2, backend="csr").estimate(
        graph, r, 32, seed=1
    )
    with pytest.warns(RuntimeWarning, match="simulated"):
        fallback = MultiChainMHSampler(
            n_chains=2, n_jobs=2, backend="csr", shared_cache=True
        ).estimate(graph, r, 32, seed=1)
    assert fallback.estimate == reference.estimate
    assert fallback.diagnostics["shared_cache"] is False


def test_shared_cache_dict_backend_driver_warns_and_falls_back(graph):
    r = graph.vertices()[0]
    reference = MultiChainMHSampler(n_chains=2, backend="dict").estimate(
        graph, r, 32, seed=1
    )
    with pytest.warns(RuntimeWarning, match="requires the CSR backend"):
        fallback = MultiChainMHSampler(
            n_chains=2, backend="dict", shared_cache=True
        ).estimate(graph, r, 32, seed=1)
    assert fallback.estimate == reference.estimate
    assert fallback.diagnostics["shared_cache"] is False


def test_shared_cache_driver_validates_its_knobs():
    with pytest.raises(ConfigurationError):
        MultiChainMHSampler(n_chains=2, shared_cache="yes")
    with pytest.raises(ConfigurationError):
        MultiChainMHSampler(n_chains=2, shared_cache_capacity=0)


# ----------------------------------------------------------------------
# API / plan / env threading
# ----------------------------------------------------------------------


def test_shared_cache_api_threading(graph):
    r = graph.vertices()[0]
    reference = betweenness_single(
        graph, r, method="mh", samples=40, seed=9, n_chains=2, backend="csr"
    )
    shared = betweenness_single(
        graph,
        r,
        method="mh",
        samples=40,
        seed=9,
        n_chains=2,
        n_jobs=2,
        backend="csr",
        shared_cache=True,
    )
    assert shared.estimate == reference.estimate
    assert shared.diagnostics["shared_cache"] is True


def test_shared_cache_api_requires_the_multichain_driver(graph):
    with pytest.raises(ConfigurationError, match="multi-chain"):
        betweenness_single(
            graph, graph.vertices()[0], method="mh", samples=20, shared_cache=True
        )
    with pytest.raises(ConfigurationError, match="multi-chain"):
        relative_betweenness(
            graph, graph.vertices()[:3], samples=20, shared_cache=True
        )


def test_shared_cache_env_override_reaches_the_driver(graph, monkeypatch):
    monkeypatch.setenv("REPRO_SHARED_CACHE", "1")
    assert resolve_shared_cache(None) is True
    r = graph.vertices()[0]
    est = MultiChainMHSampler(n_chains=2, backend="csr").estimate(graph, r, 32, seed=4)
    assert est.diagnostics["shared_cache"] is True
    # An explicit False wins over the env var, like every engine knob.
    est = MultiChainMHSampler(n_chains=2, backend="csr", shared_cache=False).estimate(
        graph, r, 32, seed=4
    )
    assert est.diagnostics["shared_cache"] is False


def test_shared_cache_env_never_engages_the_engine(graph, monkeypatch):
    """The cache flag selects a sharing policy, not an execution discipline:
    with only REPRO_SHARED_CACHE set, resolve_plan must stay None so every
    estimator keeps its legacy sequential path (and its legacy estimate) —
    an earlier revision let the flag engage the plan and silently moved
    fixed-seed RK/MH results."""
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    r = graph.vertices()[0]
    legacy = betweenness_single(graph, r, method="rk", samples=60, seed=7)
    monkeypatch.setenv("REPRO_SHARED_CACHE", "1")
    assert resolve_plan(None) is None
    flagged = betweenness_single(graph, r, method="rk", samples=60, seed=7)
    assert flagged.estimate == legacy.estimate
    # When the other knobs do engage the engine, the field is filled in.
    plan = resolve_plan(None, n_jobs=2)
    assert plan is not None and plan.shared_cache is True


def test_shared_cache_env_override_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_SHARED_CACHE", "maybe")
    with pytest.raises(ConfigurationError):
        resolve_shared_cache(None)


def test_runtime_arena_honours_shared_cache_capacity(graph):
    """A driver's explicit shared_cache_capacity must size the runtime's
    persistent arena, not be silently dropped in favour of the default."""
    from repro.execution import ExecutionContext

    r = graph.vertices()[0]
    with ExecutionContext() as ctx:
        sampler = MultiChainMHSampler(
            n_chains=2, backend="csr", shared_cache_capacity=7, runtime=ctx
        )
        estimate = sampler.estimate(graph, r, 32, seed=1)
        stats = estimate.diagnostics["shared_cache_stats"]
    assert stats is not None
    assert stats["capacity"] == 7
