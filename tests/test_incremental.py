"""Delta-scoped invalidation: journal, affected regions, retention, bit-identity.

Covers the mutation path end to end:

* the typed change journal of :class:`repro.graphs.core.Graph` (records,
  batching, overflow, pickling);
* :meth:`repro.graphs.csr.CSRGraph.patched` (weight-only snapshot patching);
* :mod:`repro.incremental` — the affected-source rule, its fallbacks, and
  the biconnected helpers;
* the hypothesis property that the affected region is a **superset** of
  the truly-changed dependency rows over random mutation sequences;
* warm-vs-cold bit-identity of session answers across the execution grid
  (backend x kernel rung x n_jobs) and across journal overflow;
* the runtime's delta-scoped arena eviction and the session's oracle /
  chain retention.
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.centrality import BetweennessSession, betweenness_single
from repro.errors import ConfigurationError, EdgeNotFoundError
from repro.execution import ExecutionContext, ExecutionPlan
from repro.execution.shared_cache import shared_memory_available
from repro.graphs import Graph, cycle_graph, path_graph, star_graph
from repro.graphs.core import JOURNAL_LIMIT, GraphDelta
from repro.graphs.csr import CSRGraph
from repro.incremental import (
    affected_sources,
    articulation_points,
    bridges,
    resolve_invalidation,
)
from repro.shortest_paths.batch import batch_source_dependencies


# ----------------------------------------------------------------------
# The change journal
# ----------------------------------------------------------------------
class TestChangeJournal:
    def test_mutations_append_typed_deltas(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, weight=1.0)
        v0 = g.version
        g.add_edge(1, 2, weight=2.0)
        g.add_edge(0, 1, weight=3.0)  # weight change of an existing edge
        g.remove_edge(1, 2)
        deltas = g.journal_since(v0)
        kinds = [d.kind for d in deltas]
        assert "edge-added" in kinds
        assert "weight-changed" in kinds
        assert "edge-removed" in kinds
        weight_change = next(d for d in deltas if d.kind == "weight-changed")
        assert weight_change.old_weight == 1.0
        assert weight_change.weight == 3.0
        removed = next(d for d in deltas if d.kind == "edge-removed")
        assert removed.old_weight == 2.0

    def test_journal_since_sentinels(self):
        g = Graph()
        g.add_edge(0, 1)
        assert g.journal_since(g.version) == ()
        assert g.journal_since(g.version + 5) is None

    def test_idempotent_upsert_is_invisible(self):
        g = Graph()
        g.add_edge(0, 1)
        v = g.version
        g.add_edge(0, 1)  # same edge, same (default) weight: no-op
        assert g.version == v
        assert g.journal_since(v) == ()

    def test_batch_is_one_version_bump_one_window(self):
        g = Graph()
        g.add_edge(0, 1)
        v0 = g.version
        with g.batch_mutations():
            g.add_edge(1, 2)
            g.add_edge(2, 3)
            g.remove_edge(0, 1)
        assert g.version == v0 + 1
        deltas = g.journal_since(v0)
        assert len(deltas) >= 3
        g2 = Graph()
        g2.add_edge(0, 1)
        v1 = g2.version
        g2.add_edges_from([(1, 2), (2, 3), (3, 4)])
        assert g2.version == v1 + 1

    def test_vertex_ops_recorded(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        v0 = g.version
        g.remove_vertex(2)
        deltas = g.journal_since(v0)
        assert any(d.kind == "vertex-removed" for d in deltas)
        assert all(isinstance(d, GraphDelta) for d in deltas)

    def test_overflow_forgets_old_versions(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, weight=1.0)
        v0 = g.version
        for i in range(JOURNAL_LIMIT + 10):
            g.add_edge(0, 1, weight=2.0 + (i % 2))
        assert g.journal_since(v0) is None, "overflowed window must be refused"
        assert g.journal_since(g.version) == ()

    def test_settled_version_pends_inside_bumped_batch(self):
        g = Graph.from_edges([(0, 1)])
        v = g.version
        assert not g.in_batch
        assert g.settled_version() == v
        with g.batch_mutations():
            assert g.in_batch
            # No mutation yet: the batch has not bumped, nothing pends.
            assert g.settled_version() == g.version == v
            g.add_edge(1, 2)
            assert g.version == v + 1
            assert g.settled_version() == v, "bumped batch version must pend"
            g.add_edge(2, 3)
            assert g.settled_version() == v
        assert not g.in_batch
        assert g.settled_version() == g.version == v + 1

    def test_pickle_roundtrip_preserves_journal(self):
        g = Graph()
        g.add_edge(0, 1)
        v0 = g.version
        g.add_edge(1, 2)
        clone = pickle.loads(pickle.dumps(g))
        assert clone.version == g.version
        assert [d.kind for d in clone.journal_since(v0)] == [
            d.kind for d in g.journal_since(v0)
        ]


# ----------------------------------------------------------------------
# Weight-only snapshot patching
# ----------------------------------------------------------------------
class TestPatchedSnapshot:
    def _weighted_path(self):
        g = Graph(weighted=True)
        for i in range(8):
            g.add_edge(i, i + 1, weight=1.0 + i)
        return g

    def test_weight_only_mutation_patches_in_place(self):
        g = self._weighted_path()
        before = g.csr()
        g.add_edge(3, 4, weight=42.0)
        after = g.csr()
        assert after.indptr is before.indptr
        assert after.indices is before.indices
        assert after.weights is not before.weights
        rebuilt = CSRGraph.from_graph(g)
        assert np.array_equal(after.weights, rebuilt.weights)

    def test_structural_mutation_rebuilds(self):
        g = self._weighted_path()
        before = g.csr()
        g.add_edge(0, 8, weight=5.0)
        after = g.csr()
        assert after.indices is not before.indices
        assert after.number_of_edges() == before.number_of_edges() + 1

    def test_patched_rejects_absent_edge(self):
        csr = self._weighted_path().csr()
        with pytest.raises(EdgeNotFoundError):
            csr.patched([(0, 7, 1.0)])


# ----------------------------------------------------------------------
# Biconnected helpers
# ----------------------------------------------------------------------
class TestBiconnected:
    def test_path_graph(self):
        csr = path_graph(6).csr()
        aps = articulation_points(csr)
        assert list(np.nonzero(aps)[0]) == [1, 2, 3, 4]
        assert len(bridges(csr)) == 5

    def test_cycle_graph_has_none(self):
        csr = cycle_graph(6).csr()
        assert not articulation_points(csr).any()
        assert bridges(csr) == set()

    def test_star_center_is_articulation(self):
        g = star_graph(5)
        csr = g.csr()
        aps = articulation_points(csr)
        center_index = csr.find_index(g.vertices()[0])
        assert aps[center_index]
        assert int(aps.sum()) == 1
        assert len(bridges(csr)) == 5


# ----------------------------------------------------------------------
# The affected-source rule and its fallbacks
# ----------------------------------------------------------------------
class TestAffectedSources:
    def test_empty_window_affects_nothing(self):
        csr = star_graph(4).csr()
        region = affected_sources(csr, ())
        assert not region.everything
        assert region.count() == 0

    def test_overflow_falls_back_to_everything(self):
        csr = star_graph(4).csr()
        region = affected_sources(csr, None)
        assert region.everything
        assert region.reason == "journal-overflow"

    def test_vertex_change_falls_back(self):
        csr = star_graph(4).csr()
        region = affected_sources(csr, (GraphDelta("vertex-added", u=9),))
        assert region.everything
        assert region.reason == "vertex-change"

    def test_weighted_structural_falls_back(self):
        # The tightness argument needs the mutated edge present in both
        # snapshots, so structural records in a weighted window still
        # force the full fallback.
        g = Graph(weighted=True)
        g.add_edge(0, 1, weight=2.0)
        g.add_edge(1, 2, weight=3.0)
        region = affected_sources(
            g.csr(), (GraphDelta("edge-added", u=1, v=2, weight=3.0),)
        )
        assert region.everything
        assert region.reason == "weighted"

    def test_weight_record_missing_old_weight_falls_back(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, weight=2.0)
        g.add_edge(1, 2, weight=3.0)
        region = affected_sources(
            g.csr(), (GraphDelta("weight-changed", u=0, v=1, weight=4.0),)
        )
        assert region.everything
        assert region.reason == "unknown-weight"

    def test_weight_only_window_scopes_to_tight_sources(self):
        # Weighted star (spokes weight 1, one long spoke 0-5 weight 10)
        # plus a chord between leaves 1 and 2 bumped from 2.0 to 3.0.
        # Only the chord endpoints are flagged: from either, the old
        # weight 2.0 exactly ties the via-center path (d=2), so their
        # pre-mutation DAGs contained the chord.  Every other source
        # reaches both chord endpoints more cheaply than any chord
        # crossing under either weight, so those rows are retained.
        g = Graph(weighted=True)
        for leaf in (1, 2, 3, 4):
            g.add_edge(0, leaf, weight=1.0)
        g.add_edge(0, 5, weight=10.0)
        g.add_edge(1, 2, weight=2.0)
        version = g.version
        g.add_edge(1, 2, weight=3.0)  # weight-only upsert
        csr = g.csr()
        region = affected_sources(csr, g.journal_since(version))
        assert not region.everything
        assert sorted(region.endpoints) == sorted(
            (csr.index_of(1), csr.index_of(2))
        )
        affected = {int(i) for i in region.indices()}
        assert affected == {csr.index_of(1), csr.index_of(2)}

    def test_star_leaf_edge_affects_only_its_endpoints(self):
        # Every other source reaches both new endpoints through the
        # center at distance 2, so d(s,u) == d(s,v) and its whole SSSP
        # structure is untouched.
        g = star_graph(6)
        leaves = g.vertices()[1:]
        u, v = leaves[0], leaves[3]
        version = g.version
        g.add_edge(u, v)
        csr = g.csr()
        region = affected_sources(csr, g.journal_since(version))
        assert not region.everything
        affected = {int(i) for i in region.indices()}
        assert affected == {csr.find_index(u), csr.find_index(v)}

    def test_resolve_invalidation(self, monkeypatch):
        assert resolve_invalidation(None) == "delta"
        assert resolve_invalidation("full") == "full"
        monkeypatch.setenv("REPRO_INVALIDATION", "full")
        assert resolve_invalidation(None) == "full"
        with pytest.raises(ConfigurationError):
            resolve_invalidation("sometimes")


# ----------------------------------------------------------------------
# Property: the affected region is a superset of the truly-changed rows
# ----------------------------------------------------------------------
#: Candidate edges over a 10-vertex universe; each drawn pair is toggled
#: (removed when present, inserted when absent), so sequences exercise
#: insertions, removals and composites in one journal window.
_pairs = st.tuples(
    st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)
).filter(lambda p: p[0] != p[1])


class TestSupersetProperty:
    @given(
        base=st.lists(_pairs, min_size=3, max_size=25),
        ops=st.lists(_pairs, min_size=1, max_size=8),
    )
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_unaffected_rows_are_bit_identical(self, base, ops):
        g = Graph()
        for i in range(10):
            g.add_vertex(i)
        for u, v in base:
            g.add_edge(u, v)
        csr_before = g.csr()
        dep_before = batch_source_dependencies(csr_before, list(range(10)))
        version = g.version
        for u, v in ops:
            if g.has_edge(u, v):
                g.remove_edge(u, v)
            else:
                g.add_edge(u, v)
        deltas = g.journal_since(version)
        assert deltas is not None, "short windows never overflow the journal"
        csr_after = CSRGraph.from_graph(g)
        region = affected_sources(csr_after, deltas)
        if region.everything:
            return  # the safe fallback is trivially a superset
        dep_after = batch_source_dependencies(csr_after, list(range(10)))
        mask = region.mask
        for i in range(10):
            if not mask[i]:
                assert np.array_equal(dep_before[i], dep_after[i]), (
                    f"source {i} outside the affected region changed: "
                    f"ops={ops!r} base={base!r}"
                )


#: Positive edge weights for the weighted twin of the superset property;
#: bounded well away from zero so hypothesis cannot construct graphs whose
#: path sums underflow the relaxation tolerance.
_weights = st.floats(min_value=0.5, max_value=4.0, allow_nan=False, allow_infinity=False)


class TestWeightedSupersetProperty:
    @given(
        base=st.lists(
            st.tuples(_pairs, _weights), min_size=3, max_size=20, unique_by=lambda e: e[0]
        ),
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=10**6), _weights),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_unflagged_weighted_rows_are_bit_identical(self, base, ops):
        # The weighted twin of the toggle property above: every op is a
        # weight change of an existing edge (picked by index), so the
        # journal window is weight-only and routes through the
        # edge-tightness rule rather than the full fallback.
        g = Graph(weighted=True)
        for i in range(10):
            g.add_vertex(i)
        for (u, v), w in base:
            g.add_edge(u, v, weight=w)
        edges = sorted((u, v) for u, v in g.edges())
        csr_before = g.csr()
        dep_before = batch_source_dependencies(csr_before, list(range(10)))
        version = g.version
        for pick, w in ops:
            u, v = edges[pick % len(edges)]
            g.add_edge(u, v, weight=w)
        deltas = g.journal_since(version)
        assert deltas is not None, "short windows never overflow the journal"
        assert all(d.kind == "weight-changed" for d in deltas)
        csr_after = CSRGraph.from_graph(g)
        region = affected_sources(csr_after, deltas)
        assert not region.everything, region.reason
        dep_after = batch_source_dependencies(csr_after, list(range(10)))
        mask = region.mask
        for i in range(10):
            if not mask[i]:
                assert np.array_equal(dep_before[i], dep_after[i]), (
                    f"source {i} outside the affected region changed: "
                    f"ops={ops!r} base={base!r}"
                )


# ----------------------------------------------------------------------
# Warm-vs-cold bit-identity across the execution grid
# ----------------------------------------------------------------------
#: One deterministic mutate-heavy scenario replayed per grid cell.
_GRID = (
    ("dict", "auto", None),
    ("csr", "csr", None),
    ("csr", "compiled", None),
    ("csr", "csr", 2),
    ("csr", "compiled", 4),
)


def _scripted_graph():
    g = Graph()
    rng = random.Random(7)
    for i in range(18):
        g.add_edge(i, i + 1)
    for _ in range(12):
        u, v = rng.sample(range(19), 2)
        g.add_edge(u, v)
    return g


def _scripted_ops():
    rng = random.Random(11)
    return [tuple(rng.sample(range(19), 2)) for _ in range(6)]


def _scripted_weighted_graph():
    g = Graph(weighted=True)
    rng = random.Random(7)
    for i in range(18):
        g.add_edge(i, i + 1, weight=0.5 + rng.random() * 2.5)
    for _ in range(12):
        u, v = rng.sample(range(19), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, weight=0.5 + rng.random() * 2.5)
    return g


def _scripted_weight_ops(graph):
    """Deterministic weight-only mutations over the existing edge set."""
    rng = random.Random(11)
    edges = sorted((u, v) for u, v in graph.edges())
    ops = []
    for _ in range(6):
        u, v = edges[rng.randrange(len(edges))]
        ops.append((u, v, 0.5 + rng.random() * 2.5))
    return ops


@pytest.mark.skipif(
    not shared_memory_available(), reason="requires working shared memory"
)
class TestWarmColdGrid:
    @pytest.mark.parametrize("backend,kernel,n_jobs", _GRID)
    def test_session_matches_cold_across_mutations(self, backend, kernel, n_jobs):
        warm_graph = _scripted_graph()
        cold_graph = _scripted_graph()
        plan = (
            ExecutionPlan(backend=backend, batch_size=8, n_jobs=n_jobs, kernel=kernel)
            if n_jobs is not None
            else None
        )
        with BetweennessSession(
            warm_graph, plan, backend=backend, check_connected=False
        ) as session:
            for step, (u, v) in enumerate(_scripted_ops()):
                for graph in (warm_graph, cold_graph):
                    if graph.has_edge(u, v):
                        graph.remove_edge(u, v)
                    else:
                        graph.add_edge(u, v)
                warm = session.estimate(5, samples=24, seed=40 + step)
                cold = betweenness_single(
                    cold_graph,
                    5,
                    samples=24,
                    seed=40 + step,
                    backend=backend,
                    batch_size=8 if n_jobs is not None else None,
                    n_jobs=n_jobs,
                    kernel=kernel,
                    check_connected=False,
                )
                assert warm.estimate == cold.estimate, (
                    f"step {step} diverged under (backend={backend}, "
                    f"kernel={kernel}, n_jobs={n_jobs})"
                )

    @pytest.mark.parametrize("backend,kernel,n_jobs", _GRID)
    def test_weighted_session_matches_cold_across_weight_mutations(
        self, backend, kernel, n_jobs
    ):
        # The weighted twin of the scenario above: weight-only mutations
        # route through the edge-tightness rule (delta mode), and the
        # warm session must stay bit-identical to a cold recompute on a
        # separately-mutated clone for every grid cell.
        warm_graph = _scripted_weighted_graph()
        cold_graph = _scripted_weighted_graph()
        ops = _scripted_weight_ops(warm_graph)
        plan = (
            ExecutionPlan(backend=backend, batch_size=8, n_jobs=n_jobs, kernel=kernel)
            if n_jobs is not None
            else None
        )
        with BetweennessSession(
            warm_graph, plan, backend=backend, check_connected=False
        ) as session:
            for step, (u, v, weight) in enumerate(ops):
                for graph in (warm_graph, cold_graph):
                    graph.add_edge(u, v, weight=weight)
                warm = session.estimate(5, samples=24, seed=40 + step)
                cold = betweenness_single(
                    cold_graph,
                    5,
                    samples=24,
                    seed=40 + step,
                    backend=backend,
                    batch_size=8 if n_jobs is not None else None,
                    n_jobs=n_jobs,
                    kernel=kernel,
                    check_connected=False,
                )
                assert warm.estimate == cold.estimate, (
                    f"step {step} diverged under (backend={backend}, "
                    f"kernel={kernel}, n_jobs={n_jobs})"
                )


# ----------------------------------------------------------------------
# Journal overflow: full fallback, unchanged answers
# ----------------------------------------------------------------------
class TestOverflowFallback:
    def test_overflowed_session_falls_back_and_stays_correct(self):
        g = star_graph(8)
        leaves = g.vertices()[1:]
        with BetweennessSession(g, backend="csr") as session:
            session.estimate(g.vertices()[0], samples=24, seed=3)
            for i in range(JOURNAL_LIMIT + 8):
                u, v = leaves[i % 4], leaves[4 + i % 4]
                if g.has_edge(u, v):
                    g.remove_edge(u, v)
                else:
                    g.add_edge(u, v)
            receipt = session.refresh_warm_state()
            assert receipt.mode == "full"
            assert receipt.reason == "journal-overflow"
            warm = session.estimate(g.vertices()[0], samples=24, seed=3)
        cold = betweenness_single(
            Graph.from_edges(list(g.edges())), g.vertices()[0],
            samples=24, seed=3, backend="csr",
        )
        assert warm.estimate == cold.estimate


# ----------------------------------------------------------------------
# Runtime: delta-scoped arena eviction
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not shared_memory_available(), reason="requires working shared memory"
)
class TestRuntimeDeltaScoping:
    def test_delta_refresh_retains_unaffected_arena_rows(self):
        g = star_graph(8)
        g.csr()  # the pre-mutation snapshot the kernel-path guard needs
        n = g.number_of_vertices()
        with ExecutionContext() as ctx:
            ctx.refresh(g)
            arena = ctx.dependency_arena(g)
            for i in range(n):
                arena.put(i, np.full(n, float(i)))
            leaves = g.vertices()[1:]
            u, v = leaves[0], leaves[5]
            g.add_edge(u, v)
            receipt = ctx.refresh(g)
            assert receipt.mode == "delta"
            assert receipt.affected_sources == 2
            assert receipt.arena_rows_evicted == 2
            assert receipt.arena_rows_retained == n - 2
            assert ctx.dependency_arena(g) is arena, "arena object survives"
            csr = g.csr()
            assert arena.get(csr.find_index(u)) is None
            assert arena.get(csr.find_index(v)) is None
            keep = csr.find_index(g.vertices()[0])
            assert arena.get(keep) is not None

    def test_no_prior_snapshot_falls_back_to_full(self):
        g = star_graph(6)
        with ExecutionContext() as ctx:
            ctx.refresh(g)
            arena = ctx.dependency_arena(g)
            arena.put(0, np.zeros(g.number_of_vertices()))
            g.add_edge(g.vertices()[1], g.vertices()[2])  # no csr() taken
            receipt = ctx.refresh(g)
            assert receipt.mode == "full"
            assert receipt.reason == "no-prior-snapshot"
            assert ctx.dependency_arena(g) is not arena

    def test_full_mode_disables_delta_scoping(self):
        g = star_graph(6)
        g.csr()
        with ExecutionContext(invalidation="full") as ctx:
            ctx.refresh(g)
            ctx.dependency_arena(g).put(0, np.zeros(g.number_of_vertices()))
            g.add_edge(g.vertices()[1], g.vertices()[2])
            receipt = ctx.refresh(g)
            assert receipt.mode == "full"
            assert receipt.reason == "disabled"

    def test_refresh_inside_open_batch_keeps_the_window_pending(self):
        # Regression: a consumer that refreshed inside an open
        # batch_mutations() block used to stamp the batch's (still
        # accumulating) version, so the post-batch refresh saw
        # version == stamp and silently retained state the rest of the
        # batch had invalidated.
        g = star_graph(8)
        g.csr()
        leaves = g.vertices()[1:]
        n = g.number_of_vertices()
        with ExecutionContext() as ctx:
            ctx.refresh(g)
            arena = ctx.dependency_arena(g)
            for i in range(n):
                arena.put(i, np.full(n, float(i)))
            with g.batch_mutations():
                g.add_edge(leaves[0], leaves[3])
                mid = ctx.refresh(g)  # consumer sync inside the open batch
                assert mid.mode == "delta"
                g.add_edge(leaves[1], leaves[4])
            receipt = ctx.refresh(g)
            assert receipt.mode != "noop", (
                "the post-batch sync must consume the rest of the window"
            )

    def test_sustained_delta_eviction_compacts_the_arena(self):
        # Regression: tombstoned rows permanently spent arena capacity, so
        # a long-running delta-mode session ground the write-once arena
        # down to a permanent "full" while published() stayed small.
        g = star_graph(10)
        leaves = g.vertices()[1:]
        n = g.number_of_vertices()
        with ExecutionContext() as ctx:
            ctx.refresh(g)
            arena = ctx.dependency_arena(g)
            assert arena.capacity == n
            compacted = 0
            for step in range(12):
                g.csr()  # the prior snapshot the kernel-path guard needs
                for i in range(n):
                    arena.put(i, np.full(n, float(step)))
                u, v = leaves[step % 4], leaves[4 + step % 4]
                if g.has_edge(u, v):
                    g.remove_edge(u, v)
                else:
                    g.add_edge(u, v)
                receipt = ctx.refresh(g)
                assert receipt.mode == "delta", receipt.reason
                compacted += receipt.arena_rows_compacted
                assert ctx.dependency_arena(g) is arena, "arena object survives"
            assert compacted > 0, "sustained eviction must trigger compaction"
            assert arena.tombstoned() <= arena.capacity // 2

    def test_shared_store_tombstones(self):
        from repro.execution.shared_cache import SharedDependencyStore

        store = SharedDependencyStore(5, 4)
        try:
            for i in range(3):
                store.put(i, np.full(5, float(i)))
            assert store.invalidate_sources([0, 2, 4]) == 2  # 4 was never put
            assert store.published() == 1
            assert store.tombstoned() == 2
            assert store.get(0) is None
            assert store.get(1) is not None
            assert store.stats()["tombstoned"] == 2
        finally:
            store.destroy()


# ----------------------------------------------------------------------
# Session: oracle retention and chain continuation
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not shared_memory_available(), reason="requires working shared memory"
)
class TestSessionRetention:
    def test_oracle_vectors_survive_outside_the_region(self):
        g = star_graph(10)
        center = g.vertices()[0]
        leaves = g.vertices()[1:]
        with BetweennessSession(g, backend="csr") as session:
            session.estimate(center, samples=40, seed=2)
            warm_before = session.stats()["warm_oracles"]
            g.add_edge(leaves[0], leaves[5])
            receipt = session.refresh_warm_state()
            assert receipt.mode == "delta"
            assert receipt.affected_sources == 2
            assert receipt.oracle_vectors_evicted <= 2
            assert receipt.oracle_vectors_retained > 0
            assert session.stats()["warm_oracles"] == warm_before

    def test_weight_only_mutation_reports_delta_mode(self):
        # The acceptance receipt of the weighted edge-tightness rule: a
        # weight-only mutation of a weighted session graph must scope the
        # invalidation (mode "delta"), not destroy everything.
        g = _scripted_weighted_graph()
        with BetweennessSession(
            g, backend="csr", check_connected=False
        ) as session:
            session.estimate(5, samples=24, seed=9)
            u, v, weight = _scripted_weight_ops(g)[0]
            g.add_edge(u, v, weight=weight)
            receipt = session.refresh_warm_state()
            assert receipt.mode == "delta", receipt.reason
            assert receipt.affected_sources is not None
            assert receipt.affected_sources < g.number_of_vertices()
            assert receipt.touched_endpoints == 2

    def test_full_fallback_clears_oracles(self):
        g = star_graph(10)
        leaves = g.vertices()[1:]
        with BetweennessSession(
            g, backend="csr", invalidation="full"
        ) as session:
            session.estimate(g.vertices()[0], samples=40, seed=2)
            g.add_edge(leaves[0], leaves[5])
            receipt = session.refresh_warm_state()
            assert receipt.mode == "full"
            assert receipt.reason == "disabled"
            assert receipt.oracle_vectors_retained == 0
            assert session.stats()["warm_oracles"] == 0

    def test_chain_continues_when_region_misses_its_state(self):
        g = star_graph(10)
        center = g.vertices()[0]
        leaves = g.vertices()[1:]
        with BetweennessSession(g, backend="csr") as session:
            chain = session.open_chain(center, seed=5)
            chain.advance(30)
            state = chain.result.states[-1].vertex
            u, v = [l for l in leaves if l != state][:2]
            g.add_edge(u, v)
            receipt = session.refresh_warm_state()
            assert receipt.mode == "delta"
            assert receipt.chains_continued == 1
            assert receipt.chains_restarted == 0
            before = chain.result.chain_length()
            chain.advance(30)
            assert chain.result.chain_length() == before + 30
            assert chain.continuations == 1
            assert chain.restarts == 0

    def test_chain_restarts_when_its_state_is_affected(self):
        g = star_graph(10)
        center = g.vertices()[0]
        leaves = g.vertices()[1:]
        with BetweennessSession(g, backend="csr") as session:
            chain = session.open_chain(center, seed=5)
            chain.advance(30)
            state = chain.result.states[-1].vertex
            other = next(l for l in leaves if l != state)
            u = state if state != center else leaves[0]
            g.add_edge(u, other)
            receipt = session.refresh_warm_state()
            assert receipt.chains_restarted + receipt.chains_continued == 1
            if receipt.chains_restarted:
                chain.advance(20)
                assert chain.restarts == 1
                assert chain.result.chain_length() == 20

    def test_query_inside_open_batch_never_serves_stale_state_after(self):
        # Regression (high): a session query issued inside an open
        # batch_mutations() block stamped the bumped batch version;
        # mutations later in the same batch journaled under that same
        # version, so the post-batch query saw version == stamp, skipped
        # invalidation, and served stale warm oracle/arena vectors.
        warm_graph = star_graph(10)
        center = warm_graph.vertices()[0]
        leaves = warm_graph.vertices()[1:]
        with BetweennessSession(warm_graph, backend="csr") as session:
            session.estimate(center, samples=30, seed=1)  # warm the oracle
            with warm_graph.batch_mutations():
                warm_graph.add_edge(leaves[0], leaves[1])
                mid = session.estimate(center, samples=30, seed=2)
                warm_graph.add_edge(leaves[2], leaves[3])
                warm_graph.add_edge(leaves[4], leaves[5])
            warm = session.estimate(center, samples=30, seed=3)
        # The mid-batch answer reflects the graph as mutated so far...
        mid_graph = star_graph(10)
        mid_graph.add_edge(leaves[0], leaves[1])
        cold_mid = betweenness_single(
            mid_graph, center, samples=30, seed=2, backend="csr"
        )
        assert mid.estimate == cold_mid.estimate
        # ...and the post-batch answer the *whole* batch, bit-identically.
        cold_graph = Graph.from_edges(list(warm_graph.edges()))
        cold = betweenness_single(
            cold_graph, center, samples=30, seed=3, backend="csr"
        )
        assert warm.estimate == cold.estimate

    def test_mutate_noop_reports_version_unchanged(self):
        from repro.centrality.session import ThreadSafeSession

        g = star_graph(6)
        with BetweennessSession(g, backend="csr") as session:
            safe = ThreadSafeSession(session)
            edge = (g.vertices()[0], g.vertices()[1])  # already present
            receipt = safe.mutate(lambda graph: graph.add_edge(*edge))
            assert receipt.mode == "noop"
            assert receipt.version_changed is False
