"""Tests for the analysis layer: error metrics, rankings, coverage and convergence."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ConvergencePoint,
    absolute_error,
    bias_curve,
    convergence_sweep,
    coverage_curve,
    empirical_coverage,
    errors_by_vertex,
    kendall_tau,
    max_absolute_error,
    mean_absolute_error,
    mean_squared_error,
    rank_vertices,
    ranking_report,
    relative_error,
    root_mean_squared_error,
    spearman_correlation,
    summarize_runs,
    top_k_accuracy,
)
from repro.errors import ConfigurationError


class TestErrorMetrics:
    def test_absolute_error(self):
        assert absolute_error(1.5, 1.0) == 0.5
        assert absolute_error(0.5, 1.0) == 0.5

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(0.1, 0.0) == float("inf")

    def test_mean_absolute_error(self):
        assert mean_absolute_error([1.0, 2.0], [0.0, 4.0]) == pytest.approx(1.5)

    def test_mean_squared_error(self):
        assert mean_squared_error([1.0, 2.0], [0.0, 4.0]) == pytest.approx(2.5)

    def test_rmse(self):
        assert root_mean_squared_error([3.0], [0.0]) == pytest.approx(3.0)

    def test_max_absolute_error(self):
        assert max_absolute_error([1.0, 5.0], [1.0, 1.0]) == 4.0

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_error([1.0], [1.0, 2.0])

    def test_empty_sequences(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_error([], [])

    def test_errors_by_vertex(self):
        errors = errors_by_vertex({0: 1.0, 1: 2.0}, {0: 1.5, 1: 2.0, 2: 3.0})
        assert errors == {0: 0.5, 1: 0.0, 2: 3.0}

    def test_summarize_runs(self):
        stats = summarize_runs([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["max"] == 3.0
        assert stats["min"] == 1.0
        assert stats["runs"] == 3.0
        assert stats["stddev"] > 0.0

    def test_summarize_runs_empty(self):
        with pytest.raises(ConfigurationError):
            summarize_runs([])


class TestRanking:
    def test_rank_vertices(self):
        ranking = rank_vertices({"a": 0.2, "b": 0.9, "c": 0.5})
        assert ranking == ["b", "c", "a"]

    def test_spearman_perfect(self):
        assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_spearman_reversed(self):
        assert spearman_correlation([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_spearman_with_ties(self):
        value = spearman_correlation([1, 1, 2, 3], [1, 2, 3, 4])
        assert -1.0 <= value <= 1.0

    def test_spearman_constant_sequence(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_spearman_validation(self):
        with pytest.raises(ConfigurationError):
            spearman_correlation([1], [1])
        with pytest.raises(ConfigurationError):
            spearman_correlation([1, 2], [1, 2, 3])

    def test_kendall_perfect_and_reversed(self):
        assert kendall_tau([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_kendall_matches_scipy(self):
        import random

        from scipy.stats import kendalltau

        rng = random.Random(3)
        x = [rng.random() for _ in range(30)]
        y = [rng.random() for _ in range(30)]
        ours = kendall_tau(x, y)
        theirs = kendalltau(x, y).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_spearman_matches_scipy(self):
        import random

        from scipy.stats import spearmanr

        rng = random.Random(4)
        x = [rng.random() for _ in range(25)]
        y = [rng.random() for _ in range(25)]
        assert spearman_correlation(x, y) == pytest.approx(spearmanr(x, y).statistic, abs=1e-12)

    def test_top_k_accuracy(self):
        exact = {"a": 3.0, "b": 2.0, "c": 1.0, "d": 0.5}
        estimated = {"a": 2.5, "b": 0.1, "c": 1.5, "d": 0.2}
        assert top_k_accuracy(estimated, exact, 1) == 1.0
        assert top_k_accuracy(estimated, exact, 2) == 0.5

    def test_top_k_validation(self):
        with pytest.raises(ConfigurationError):
            top_k_accuracy({"a": 1.0}, {"a": 1.0}, 0)

    def test_ranking_report(self):
        exact = {v: float(v) for v in range(10)}
        estimated = {v: float(v) + 0.01 for v in range(10)}
        report = ranking_report(estimated, exact, k=3)
        assert report["spearman"] == pytest.approx(1.0)
        assert report["kendall"] == pytest.approx(1.0)
        assert report["top_k_accuracy"] == 1.0

    def test_ranking_report_needs_common_vertices(self):
        with pytest.raises(ConfigurationError):
            ranking_report({0: 1.0}, {1: 1.0})


class TestCoverage:
    def test_perfect_estimator_never_fails(self):
        result = empirical_coverage(lambda rng: 1.0, 1.0, epsilon=0.1, runs=20, seed=1)
        assert result.failures == 0
        assert result.empirical_failure_rate == 0.0
        assert result.within_bound()

    def test_bad_estimator_always_fails(self):
        result = empirical_coverage(lambda rng: 5.0, 1.0, epsilon=0.1, runs=10, seed=1)
        assert result.failures == 10
        assert result.empirical_failure_rate == 1.0

    def test_bound_recorded_and_checked(self):
        result = empirical_coverage(
            lambda rng: 1.0, 1.0, epsilon=0.1, runs=5, seed=1, theoretical_bound=0.5
        )
        assert result.theoretical_bound == 0.5
        assert result.within_bound()

    def test_noisy_estimator_partial_failures(self):
        result = empirical_coverage(
            lambda rng: 1.0 + rng.uniform(-0.2, 0.2), 1.0, epsilon=0.1, runs=200, seed=2
        )
        assert 0.0 < result.empirical_failure_rate < 1.0

    def test_coverage_is_reproducible(self):
        runs = [
            empirical_coverage(
                lambda rng: rng.random(), 0.5, epsilon=0.25, runs=50, seed=3
            ).empirical_failure_rate
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            empirical_coverage(lambda rng: 1.0, 1.0, epsilon=0.1, runs=0)
        with pytest.raises(ConfigurationError):
            empirical_coverage(lambda rng: 1.0, 1.0, epsilon=-1.0, runs=5)

    def test_coverage_curve_monotone_in_epsilon(self):
        results = coverage_curve(
            lambda rng: rng.uniform(0.0, 1.0),
            0.5,
            epsilons=[0.05, 0.2, 0.4, 0.6],
            runs=300,
            seed=5,
        )
        rates = [r.empirical_failure_rate for r in results]
        assert rates == sorted(rates, reverse=True)

    def test_coverage_curve_records_bounds(self):
        results = coverage_curve(
            lambda rng: 0.5, 0.5, epsilons=[0.1, 0.2], runs=5, seed=1,
            bound_for_epsilon=lambda eps: eps,
        )
        assert [r.theoretical_bound for r in results] == [0.1, 0.2]


class TestConvergence:
    def test_sweep_shapes(self):
        points = convergence_sweep(
            lambda samples, rng: 1.0 + rng.gauss(0, 1.0 / samples ** 0.5),
            1.0,
            sample_budgets=[10, 100],
            repetitions=5,
            seed=1,
        )
        assert [p.samples for p in points] == [10, 100]
        assert all(isinstance(p, ConvergencePoint) for p in points)
        row = points[0].as_row()
        assert set(row) == {"samples", "mean_error", "max_error", "rms_error", "stddev", "runs"}

    def test_sweep_error_decreases_with_samples(self):
        points = convergence_sweep(
            lambda samples, rng: 1.0 + rng.gauss(0, 1.0 / samples ** 0.5),
            1.0,
            sample_budgets=[4, 400],
            repetitions=30,
            seed=2,
        )
        assert points[1].mean_error < points[0].mean_error

    def test_sweep_validation(self):
        with pytest.raises(ConfigurationError):
            convergence_sweep(lambda s, rng: 1.0, 1.0, [10], repetitions=0)
        with pytest.raises(ConfigurationError):
            convergence_sweep(lambda s, rng: 1.0, 1.0, [0], repetitions=1)

    def test_bias_curve(self):
        curve = bias_curve([0.5, 0.8, 0.95], 1.0)
        assert curve == pytest.approx([0.5, 0.2, 0.05])
