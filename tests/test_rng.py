"""Tests for the RNG plumbing."""

from __future__ import annotations

import random

import pytest

from repro._rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_random_instance(self):
        rng = ensure_rng(None)
        assert isinstance(rng, random.Random)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(123)
        b = ensure_rng(123)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = ensure_rng(1)
        b = ensure_rng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_existing_rng_passed_through(self):
        rng = random.Random(0)
        assert ensure_rng(rng) is rng

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRng:
    def test_children_are_deterministic(self):
        a = spawn_rng(ensure_rng(5), 0)
        b = spawn_rng(ensure_rng(5), 0)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_differ(self):
        parent = ensure_rng(5)
        a = spawn_rng(parent, 0)
        b = spawn_rng(parent, 1)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_requires_random_instance(self):
        with pytest.raises(TypeError):
            spawn_rng(42, 0)  # type: ignore[arg-type]

    def test_negative_stream_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(1), -1)
