"""Tests for the single-space Metropolis-Hastings sampler (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SamplingError
from repro.exact import betweenness_of_vertex
from repro.graphs import Graph, barbell_graph, path_graph, star_graph
from repro.mcmc import (
    DependencyOracle,
    SingleSpaceMHSampler,
    stationary_distribution,
    total_variation_distance,
)
from repro.mcmc.single import ESTIMATORS, PROPOSALS


class TestChainMechanics:
    def test_chain_has_t_plus_one_states(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 50, seed=1)
        assert len(chain.states) == 51
        assert chain.chain_length() == 50

    def test_initial_state_respected(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 10, seed=1, initial_state=3)
        assert chain.states[0].vertex == 3

    def test_rejected_proposal_repeats_state(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 200, seed=2)
        for previous, state in zip(chain.states, chain.states[1:]):
            if not state.accepted:
                assert state.vertex == previous.vertex
                assert state.dependency == previous.dependency

    def test_accepted_moves_change_dependency_consistently(self, barbell):
        oracle = DependencyOracle(barbell)
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 100, seed=3, oracle=oracle)
        for state in chain.states:
            assert state.dependency == pytest.approx(oracle.dependency(state.vertex, 5))

    def test_acceptance_rate_between_zero_and_one(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 100, seed=4)
        assert 0.0 <= chain.acceptance_rate() <= 1.0

    def test_deterministic_given_seed(self, barbell):
        a = SingleSpaceMHSampler().run_chain(barbell, 5, 60, seed=9)
        b = SingleSpaceMHSampler().run_chain(barbell, 5, 60, seed=9)
        assert a.visited_vertices() == b.visited_vertices()

    def test_different_seeds_differ(self, barbell):
        a = SingleSpaceMHSampler().run_chain(barbell, 5, 60, seed=9)
        b = SingleSpaceMHSampler().run_chain(barbell, 5, 60, seed=10)
        assert a.visited_vertices() != b.visited_vertices()

    def test_shared_oracle_reuses_evaluations(self, barbell):
        oracle = DependencyOracle(barbell)
        SingleSpaceMHSampler().run_chain(barbell, 5, 100, seed=1, oracle=oracle)
        first = oracle.evaluations
        SingleSpaceMHSampler().run_chain(barbell, 5, 100, seed=2, oracle=oracle)
        # the second chain revisits mostly cached vertices
        assert oracle.evaluations <= first + barbell.number_of_vertices()
        assert oracle.evaluations <= barbell.number_of_vertices()

    def test_chain_never_leaves_support_once_entered(self, barbell):
        # Once the chain is at a positive-dependency state it can only move
        # to another positive-dependency state (zero-dependency candidates
        # have acceptance probability 0).
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 300, seed=5)
        entered = False
        for state in chain.states:
            if state.dependency > 0.0:
                entered = True
            elif entered:
                pytest.fail("chain moved from a positive-dependency state to a zero one")

    def test_burn_in_drops_states(self, barbell):
        sampler = SingleSpaceMHSampler(burn_in=10)
        chain = sampler.run_chain(barbell, 5, 50, seed=1)
        assert len(chain.kept_states()) == 41

    def test_record_states_false_still_estimates(self, barbell):
        lean = SingleSpaceMHSampler(record_states=False).estimate(barbell, 5, 100, seed=3)
        full = SingleSpaceMHSampler().estimate(barbell, 5, 100, seed=3)
        assert lean.estimate == pytest.approx(full.estimate)

    def test_validation_errors(self, barbell):
        with pytest.raises(ConfigurationError):
            SingleSpaceMHSampler(proposal="bogus")
        with pytest.raises(ConfigurationError):
            SingleSpaceMHSampler(estimator="bogus")
        with pytest.raises(ConfigurationError):
            SingleSpaceMHSampler(burn_in=-1)
        with pytest.raises(ConfigurationError):
            SingleSpaceMHSampler().run_chain(barbell, 5, 0)
        with pytest.raises(ConfigurationError):
            SingleSpaceMHSampler(burn_in=20).run_chain(barbell, 5, 10)

    def test_single_vertex_graph_rejected(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(SamplingError):
            SingleSpaceMHSampler().run_chain(g, 0, 10)


class TestStationaryBehaviour:
    def test_visit_frequencies_approach_equation_5(self, barbell):
        # Long chain: the empirical distribution should be close (in TV) to
        # the dependency-proportional stationary distribution.
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 4000, seed=11)
        target = stationary_distribution(barbell, 5)
        tv = total_variation_distance(chain.empirical_distribution(), target)
        assert tv < 0.08

    def test_uniform_dependency_graph_high_acceptance(self, star6):
        # For the star centre every leaf has the same dependency, so every
        # proposal among leaves is accepted; acceptance rate stays near 1.
        chain = SingleSpaceMHSampler().run_chain(star6, 0, 500, seed=2)
        assert chain.acceptance_rate() > 0.8


def pi_weighted_limit(graph, r):
    """Asymptotic value of the Equation 7 chain read-out: E_pi[delta] / (n - 1)."""
    from repro.shortest_paths import all_dependencies_on_target

    deltas = all_dependencies_on_target(graph, r)
    total = sum(deltas.values())
    second_moment = sum(d * d for d in deltas.values())
    return second_moment / total / (graph.number_of_vertices() - 1)


class TestEstimators:
    def test_paper_estimator_on_large_flat_target_is_accurate(self):
        # For a large star the dependencies on the centre are flat and the
        # support covers almost every vertex, so the Equation 7 read-out is
        # close to BC(centre) — the regime in which the paper's constant-
        # sample claim (Theorem 2) is meaningful.
        big_star = star_graph(60)
        exact = betweenness_of_vertex(big_star, 0)
        result = SingleSpaceMHSampler().estimate(big_star, 0, 400, seed=6)
        assert result.estimate == pytest.approx(exact, rel=0.08)

    def test_chain_estimator_converges_to_pi_weighted_mean(self, path5):
        # Reproduction finding: the Equation 7 read-out converges to the
        # pi-weighted mean of the dependency scores, not to BC(r).
        limit = pi_weighted_limit(path5, 1)
        result = SingleSpaceMHSampler().estimate(path5, 1, 4000, seed=21)
        assert result.estimate == pytest.approx(limit, abs=0.05)

    def test_unbiased_estimator_on_skewed_target(self, path5):
        # Vertex 1 of the path has skewed dependencies; the corrected
        # "proposal" read-out stays unbiased while the chain read-out drifts.
        exact = betweenness_of_vertex(path5, 1)
        unbiased = SingleSpaceMHSampler(estimator="proposal").estimate(path5, 1, 1500, seed=8)
        assert unbiased.estimate == pytest.approx(exact, abs=0.05)

    def test_chain_estimator_bias_direction(self, path5):
        # The Equation 7 read-out converges to the pi-weighted mean, which is
        # >= BC(r); with a long chain the estimate should exceed the exact value.
        exact = betweenness_of_vertex(path5, 1)
        biased = SingleSpaceMHSampler().estimate(path5, 1, 3000, seed=8)
        assert biased.estimate > exact

    def test_estimator_read_outs_disagree_only_through_weighting(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 200, seed=4)
        values = {name: chain.estimate(name) for name in ESTIMATORS}
        assert len(values) == 3
        assert all(v >= 0.0 for v in values.values())

    def test_unknown_estimator_name_rejected(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 20, seed=1)
        with pytest.raises(ValueError):
            chain.estimate("bogus")

    def test_running_estimates_end_at_final_estimate(self, barbell):
        chain = SingleSpaceMHSampler().run_chain(barbell, 5, 100, seed=3)
        running = chain.running_estimates()
        assert len(running) == len(chain.kept_states())
        assert running[-1] == pytest.approx(chain.estimate())

    def test_zero_betweenness_target_estimates_zero(self, star6):
        result = SingleSpaceMHSampler().estimate(star6, 3, 100, seed=1)
        assert result.estimate == 0.0

    def test_estimate_diagnostics_contents(self, barbell):
        result = SingleSpaceMHSampler().estimate(barbell, 5, 50, seed=1)
        diag = result.diagnostics
        assert set(diag) >= {"acceptance_rate", "evaluations", "proposal", "estimator", "chain"}
        assert result.method == "mh-single"


class TestProposalVariants:
    @pytest.mark.parametrize("proposal", PROPOSALS)
    def test_all_proposals_share_the_same_limit(self, star6, proposal):
        # Whatever the proposal, the stationary distribution (and hence the
        # Equation 7 limit) is unchanged.
        limit = pi_weighted_limit(star6, 0)
        sampler = SingleSpaceMHSampler(proposal=proposal)
        result = sampler.estimate(star6, 0, 800, seed=13)
        assert result.estimate == pytest.approx(limit, abs=0.06)

    def test_degree_proposal_preserves_stationary_distribution(self, barbell):
        chain = SingleSpaceMHSampler(proposal="degree").run_chain(barbell, 5, 4000, seed=17)
        target = stationary_distribution(barbell, 5)
        tv = total_variation_distance(chain.empirical_distribution(), target)
        assert tv < 0.1

    def test_random_walk_proposal_moves_along_edges(self, barbell):
        chain = SingleSpaceMHSampler(proposal="random-walk").run_chain(barbell, 5, 300, seed=3)
        previous = chain.states[0]
        for state in chain.states[1:]:
            if state.accepted and state.vertex != previous.vertex:
                assert barbell.has_edge(previous.vertex, state.vertex)
            previous = state
