"""Tests for Brandes dependency accumulation — the shared substrate of every estimator."""

from __future__ import annotations

import pytest

from repro.graphs import Graph, cycle_graph, path_graph, star_graph
from repro.shortest_paths import (
    accumulate_dependencies,
    accumulate_edge_dependencies,
    all_dependencies_on_target,
    bfs_spd,
    dependency_on_target,
    source_dependencies,
    spd_builder,
)
from repro.shortest_paths.dijkstra import dijkstra_spd


def naive_dependency(graph: Graph, source, vertex) -> float:
    """Direct evaluation of delta_{source.}(vertex) from per-pair path counts."""
    spd = bfs_spd(graph, source)
    deps = spd.pair_dependencies(vertex)
    return sum(deps.values())


class TestAccumulateDependencies:
    def test_path_graph_closed_form(self, path5):
        # From source 0 on the path 0-1-2-3-4: delta_0(v) = number of targets behind v.
        deltas = source_dependencies(path5, 0)
        assert deltas[1] == pytest.approx(3.0)
        assert deltas[2] == pytest.approx(2.0)
        assert deltas[3] == pytest.approx(1.0)
        assert deltas[4] == pytest.approx(0.0)

    def test_source_dependency_on_itself_is_zero(self, barbell):
        deltas = source_dependencies(barbell, 0)
        assert deltas[0] == 0.0

    def test_star_center(self, star6):
        # From a leaf, the centre lies on the unique shortest path to every other leaf.
        deltas = source_dependencies(star6, 1)
        assert deltas[0] == pytest.approx(5.0)
        assert deltas[2] == pytest.approx(0.0)

    def test_cycle_split_dependencies(self):
        g = cycle_graph(6)
        deltas = source_dependencies(g, 0)
        # Each neighbour of the source carries full credit for the vertex two
        # steps away on its side plus half credit for the antipode (vertex 3),
        # which is reached by two shortest paths.
        assert deltas[1] == pytest.approx(1.5)
        assert deltas[5] == pytest.approx(1.5)
        assert deltas[3] == pytest.approx(0.0)

    def test_matches_naive_pairwise_computation(self, small_er):
        source = 0
        deltas = source_dependencies(small_er, source)
        for vertex in list(small_er.vertices())[:10]:
            if vertex == source:
                continue
            assert deltas[vertex] == pytest.approx(naive_dependency(small_er, source, vertex))

    def test_matches_networkx_per_source_totals(self, small_ba):
        # Sum of our per-source dependencies over all sources equals the
        # networkx unnormalised betweenness times 2 (ordered pairs).
        import networkx as nx

        from repro.graphs.io import to_networkx

        totals = {v: 0.0 for v in small_ba.vertices()}
        for s in small_ba.vertices():
            for v, d in source_dependencies(small_ba, s).items():
                if v != s:
                    totals[v] += d
        nx_bc = nx.betweenness_centrality(to_networkx(small_ba), normalized=False)
        for v in small_ba.vertices():
            assert totals[v] == pytest.approx(2.0 * nx_bc[v])


class TestEdgeDependencies:
    def test_path_edges(self, path5):
        spd = bfs_spd(path5, 0)
        edge_deltas = accumulate_edge_dependencies(spd)
        # edge (0,1) carries every one of the 4 targets
        assert edge_deltas[(0, 1)] == pytest.approx(4.0)
        assert edge_deltas[(3, 4)] == pytest.approx(1.0)

    def test_edge_dependencies_sum_to_vertex_dependencies(self, small_er):
        spd = bfs_spd(small_er, 0)
        vertex_deltas = accumulate_dependencies(spd)
        edge_deltas = accumulate_edge_dependencies(spd)
        for v in small_er.vertices():
            if v == 0:
                continue
            outgoing = sum(d for (a, _b), d in edge_deltas.items() if a == v)
            assert vertex_deltas[v] == pytest.approx(outgoing)


class TestTargetHelpers:
    def test_dependency_on_target_matches_vector(self, barbell):
        r = 5
        vector = all_dependencies_on_target(barbell, r)
        for v in barbell.vertices():
            assert vector[v] == pytest.approx(dependency_on_target(barbell, v, r))

    def test_dependency_on_self_is_zero(self, barbell):
        assert dependency_on_target(barbell, 3, 3) == 0.0

    def test_all_dependencies_sum_equals_unnormalised_bc(self, barbell):
        from repro.exact import betweenness_of_vertex

        r = 5
        total = sum(all_dependencies_on_target(barbell, r).values())
        n = barbell.number_of_vertices()
        assert total / (n * (n - 1)) == pytest.approx(betweenness_of_vertex(barbell, r))

    def test_spd_builder_picks_bfs_for_unweighted(self, path5):
        assert spd_builder(path5) is bfs_spd

    def test_spd_builder_picks_dijkstra_for_weighted(self, weighted_diamond):
        assert spd_builder(weighted_diamond) is dijkstra_spd

    def test_weighted_dependencies(self, weighted_diamond):
        deltas = source_dependencies(weighted_diamond, 0)
        # both middle vertices carry half of the single (0 -> 3) pair
        assert deltas[1] == pytest.approx(0.5)
        assert deltas[2] == pytest.approx(0.5)
        assert deltas[4] == pytest.approx(0.0)
