"""Tests for the edge-betweenness MH extension (paper's future-work direction)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, EdgeNotFoundError
from repro.exact import edge_betweenness_centrality
from repro.graphs import barbell_graph, cycle_graph, path_graph, star_graph
from repro.mcmc import EdgeDependencyOracle, EdgeMHSampler, exact_edge_dependency_vector


class TestEdgeDependencyOracle:
    def test_dependencies_sum_to_edge_betweenness(self, barbell):
        # Summing delta_v(e) over sources and normalising by n(n-1) must give
        # the exact edge betweenness.
        edge = (5, 6)
        vector = exact_edge_dependency_vector(barbell, edge)
        n = barbell.number_of_vertices()
        exact = edge_betweenness_centrality(barbell, normalized=True)[(5, 6)]
        assert sum(vector.values()) / (n * (n - 1)) == pytest.approx(exact)

    def test_orientation_is_irrelevant(self, path5):
        a = exact_edge_dependency_vector(path5, (1, 2))
        b = exact_edge_dependency_vector(path5, (2, 1))
        assert a == b

    def test_missing_edge_rejected(self, path5):
        with pytest.raises(EdgeNotFoundError):
            EdgeDependencyOracle(path5, (0, 4))

    def test_caching_counts(self, path5):
        oracle = EdgeDependencyOracle(path5, (1, 2))
        oracle.dependency(0)
        oracle.dependency(0)
        assert oracle.evaluations == 1
        assert oracle.lookups == 2

    def test_path_closed_form(self, path5):
        # Edge (2, 3) of the path 0-1-2-3-4: from source 0, targets 3 and 4
        # depend on it; from source 4, nothing does (the DAG orientation is
        # (3, 2)), but the undirected sum counts both directions.
        vector = exact_edge_dependency_vector(path5, (2, 3))
        assert vector[0] == pytest.approx(2.0)
        assert vector[4] == pytest.approx(3.0)


class TestEdgeMHSampler:
    def test_unbiased_estimate_matches_exact(self, barbell):
        exact = edge_betweenness_centrality(barbell, normalized=True)[(5, 6)]
        sampler = EdgeMHSampler(estimator="proposal")
        result = sampler.estimate(barbell, (5, 6), 400, seed=3)
        assert result.estimate == pytest.approx(exact, abs=0.08)

    def test_star_spoke_edge(self, star6):
        # every spoke edge of the star has the same exact betweenness
        exact = edge_betweenness_centrality(star6, normalized=True)[(0, 1)]
        result = EdgeMHSampler().estimate(star6, (0, 1), 500, seed=4)
        assert result.estimate == pytest.approx(exact, abs=0.08)

    def test_chain_read_out_runs(self, barbell):
        result = EdgeMHSampler(estimator="chain").estimate(barbell, (5, 6), 200, seed=5)
        assert result.estimate > 0.0
        assert result.diagnostics["estimator"] == "chain"

    def test_estimates_are_seed_reproducible(self, cycle_fixture=None):
        graph = cycle_graph(8)
        a = EdgeMHSampler().estimate(graph, (0, 1), 100, seed=9).estimate
        b = EdgeMHSampler().estimate(graph, (0, 1), 100, seed=9).estimate
        assert a == b

    def test_missing_edge_rejected(self, barbell):
        with pytest.raises(EdgeNotFoundError):
            EdgeMHSampler().estimate(barbell, (0, 11), 50, seed=1)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            EdgeMHSampler(estimator="bogus")

    def test_invalid_chain_length(self, barbell):
        with pytest.raises(ConfigurationError):
            EdgeMHSampler().run_chain(barbell, (5, 6), 0)

    def test_bridge_edge_dominates_clique_edge(self, barbell):
        sampler = EdgeMHSampler()
        bridge = sampler.estimate(barbell, (5, 6), 400, seed=6).estimate
        clique = sampler.estimate(barbell, (0, 1), 400, seed=6).estimate
        assert bridge > clique
