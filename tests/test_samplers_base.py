"""Tests for the shared estimator result containers and the console entry point."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.samplers.base import MapEstimate, SingleEstimate, timed


class TestSingleEstimate:
    def test_float_conversion(self):
        estimate = SingleEstimate(vertex=3, estimate=0.25, samples=10)
        assert float(estimate) == 0.25

    def test_defaults(self):
        estimate = SingleEstimate(vertex="a", estimate=0.0, samples=1)
        assert estimate.method == ""
        assert estimate.diagnostics == {}
        assert estimate.elapsed_seconds == 0.0

    def test_diagnostics_are_per_instance(self):
        a = SingleEstimate(vertex=1, estimate=0.1, samples=1)
        b = SingleEstimate(vertex=2, estimate=0.2, samples=1)
        a.diagnostics["key"] = "value"
        assert "key" not in b.diagnostics


class TestMapEstimate:
    def test_getitem(self):
        estimate = MapEstimate(estimates={1: 0.5, 2: 0.25}, samples=10)
        assert estimate[1] == 0.5

    def test_restricted_to(self):
        estimate = MapEstimate(estimates={1: 0.5, 2: 0.25, 3: 0.0}, samples=10)
        assert estimate.restricted_to([2, 3]) == {2: 0.25, 3: 0.0}

    def test_missing_vertex_raises(self):
        estimate = MapEstimate(estimates={1: 0.5}, samples=10)
        with pytest.raises(KeyError):
            estimate[99]


class TestTimed:
    def test_measures_nonnegative_time(self):
        with timed() as clock:
            sum(range(1000))
        assert clock.elapsed >= 0.0

    def test_elapsed_reset_on_reentry(self):
        clock = timed()
        with clock:
            pass
        first = clock.elapsed
        with clock:
            sum(range(10000))
        assert clock.elapsed >= 0.0
        assert clock.elapsed != first or clock.elapsed >= 0.0


class TestConsoleEntryPoint:
    def test_module_invocation_prints_datasets(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "datasets"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "email" in result.stdout

    def test_module_invocation_error_code(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "estimate", "--dataset", "barbell",
             "--vertex", "99999", "--samples", "5"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 2
        assert "error" in result.stderr
