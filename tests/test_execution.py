"""Tests for the batched multi-source kernels and the execution layer.

Two promises are checked here:

1. **Batch kernels are bit-identical per row** — for every source in a
   batch, the ``(K, n)`` distance / sigma / dependency rows equal what the
   single-source CSR kernels produce for that source alone, bit for bit,
   regardless of which other sources share the batch.
2. **Engine results are execution-invariant** — for a fixed seed, every
   estimator that accepts the ``batch_size`` / ``n_jobs`` knobs returns the
   same result for any combination of ``n_jobs ∈ {1, 2, 4}`` and
   ``batch_size ∈ {1, 8, 64}``, on both backends.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.centrality.api import betweenness_single
from repro.errors import ConfigurationError
from repro.exact.brandes import betweenness_centrality
from repro.exact.group import group_betweenness_centrality
from repro.execution import (
    DEFAULT_SHARD_SIZE,
    ExecutionPlan,
    merge_ordered,
    resolve_plan,
    run_sharded,
    shard_rngs,
    split_shards,
)
from repro.graphs import Graph, barabasi_albert_graph, erdos_renyi_graph
from repro.graphs.components import largest_connected_component
from repro.graphs.csr import np
from repro.mcmc.estimates import DependencyOracle
from repro.mcmc.joint import JointSpaceMHSampler
from repro.mcmc.single import SingleSpaceMHSampler
from repro.shortest_paths import (
    accumulate_dependencies_batch_csr,
    accumulate_dependencies_csr,
    all_dependencies_on_target,
    batch_source_dependencies,
    bfs_spd_batch_csr,
    bfs_spd_csr,
    csr_source_dependencies,
)

pytestmark = pytest.mark.skipif(np is None, reason="the execution engine requires numpy")

#: The grid the determinism contract is stated over (ISSUE 2 acceptance).
JOBS_GRID = (1, 2, 4)
BATCH_GRID = (1, 8, 64)


def _random_unweighted(seed: int) -> Graph:
    return largest_connected_component(erdos_renyi_graph(30, 0.12, seed=seed))


def _random_weighted(seed: int) -> Graph:
    rng = random.Random(seed)
    graph = Graph(weighted=True)
    n = rng.randint(8, 16)
    for _ in range(3 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, rng.choice([0.5, 1.0, 1.5, 2.0]))
    return largest_connected_component(graph)


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_batch_rows_bit_identical_to_single_source(seed, batch_len):
    """Every row of a batched BFS + accumulation equals the K=1 kernels exactly."""
    graph = _random_unweighted(seed)
    csr = graph.csr()
    n = csr.number_of_vertices()
    rng = random.Random(seed)
    sources = [rng.randrange(n) for _ in range(batch_len)]  # duplicates allowed
    batch = bfs_spd_batch_csr(csr, sources)
    deltas = accumulate_dependencies_batch_csr(batch)
    for row, s in enumerate(sources):
        spd = bfs_spd_csr(csr, s)
        assert np.array_equal(batch.dist[row], spd.dist, equal_nan=True)
        assert np.array_equal(batch.sig[row], spd.sig)
        assert np.array_equal(deltas[row], accumulate_dependencies_csr(spd))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_batch_rows_independent_of_batch_composition(seed):
    """A source's row does not depend on which other sources share the batch."""
    graph = _random_unweighted(seed)
    csr = graph.csr()
    n = csr.number_of_vertices()
    alone = batch_source_dependencies(csr, [0])
    grouped = batch_source_dependencies(csr, list(range(min(n, 7))))
    assert np.array_equal(alone[0], grouped[0])


def test_batch_cutoff_matches_single_source():
    graph = _random_unweighted(5)
    csr = graph.csr()
    batch = bfs_spd_batch_csr(csr, [0, 1], cutoff=1.5)
    for row, s in enumerate([0, 1]):
        spd = bfs_spd_csr(csr, s, cutoff=1.5)
        assert np.array_equal(batch.dist[row], spd.dist, equal_nan=True)


def test_batch_weighted_fallback_matches_dijkstra_rows():
    graph = _random_weighted(11)
    csr = graph.csr()
    sources = list(range(min(5, csr.number_of_vertices())))
    deltas = batch_source_dependencies(csr, sources)
    for row, s in enumerate(sources):
        assert np.array_equal(deltas[row], csr_source_dependencies(csr, s))


def test_batch_out_accumulates_in_source_order():
    graph = _random_unweighted(9)
    csr = graph.csr()
    n = csr.number_of_vertices()
    sources = list(range(n))
    out = np.zeros(n)
    batch_source_dependencies(csr, sources, out=out)
    expected = np.zeros(n)
    for row in batch_source_dependencies(csr, sources):
        expected += row
    assert np.array_equal(out, expected)


def test_batch_rejects_empty_and_out_of_range_sources():
    csr = _random_unweighted(3).csr()
    with pytest.raises(ValueError):
        bfs_spd_batch_csr(csr, [])
    with pytest.raises(IndexError):
        bfs_spd_batch_csr(csr, [csr.number_of_vertices()])


# ----------------------------------------------------------------------
# Plan resolution and scheduler plumbing
# ----------------------------------------------------------------------


def test_resolve_plan_returns_none_without_any_knob(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    assert resolve_plan(None) is None


def test_resolve_plan_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    monkeypatch.setenv("REPRO_BATCH", "16")
    plan = resolve_plan(None)
    assert plan == ExecutionPlan(backend="auto", batch_size=16, n_jobs=3)
    # Explicit arguments win over the env vars.
    plan = resolve_plan(None, batch_size=4, n_jobs=1)
    assert plan.batch_size == 4 and plan.n_jobs == 1
    # A ready-made plan wins over everything.
    ready = ExecutionPlan(batch_size=2, n_jobs=2)
    assert resolve_plan(ready, batch_size=64, n_jobs=8) is ready


def test_resolve_plan_rejects_bad_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ConfigurationError):
        resolve_plan(None)
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ConfigurationError):
        resolve_plan(None)


def test_execution_plan_validates_fields():
    with pytest.raises(ConfigurationError):
        ExecutionPlan(backend="gpu")
    with pytest.raises(ConfigurationError):
        ExecutionPlan(batch_size=0)
    with pytest.raises(ConfigurationError):
        ExecutionPlan(n_jobs=-1)


def test_split_shards_boundaries_are_fixed():
    items = list(range(600))
    shards = split_shards(items)
    assert [len(s) for s in shards] == [DEFAULT_SHARD_SIZE, DEFAULT_SHARD_SIZE, 88]
    assert [x for shard in shards for x in shard] == items
    assert split_shards([]) == []
    with pytest.raises(ValueError):
        split_shards(items, 0)


def test_shard_rngs_are_deterministic_and_independent():
    streams_a = [r.random() for r in shard_rngs(random.Random(42), 4)]
    streams_b = [r.random() for r in shard_rngs(random.Random(42), 4)]
    assert streams_a == streams_b
    assert len(set(streams_a)) == 4


def test_merge_ordered_shapes():
    assert merge_ordered([[1, 2], [3]]) == [1, 2, 3]
    assert merge_ordered([{"a": 1.0}, {"a": 2.0, "b": 1.0}]) == {"a": 3.0, "b": 1.0}
    assert merge_ordered([1.5, 2.5]) == 4.0
    arrays = [np.ones(3), np.ones(3)]
    assert np.array_equal(merge_ordered(arrays), np.full(3, 2.0))
    assert np.array_equal(arrays[0], np.ones(3)), "inputs must not be mutated"
    with pytest.raises(ValueError):
        merge_ordered([])


def _echo_shard(shared, shard):
    return [shared + x for x in shard]


def test_run_sharded_pool_preserves_shard_order():
    shards = split_shards(list(range(40)), 10)
    inline = run_sharded(_echo_shard, shards, n_jobs=1, shared=100)
    pooled = run_sharded(_echo_shard, shards, n_jobs=3, shared=100)
    assert inline == pooled
    assert merge_ordered(pooled) == [100 + x for x in range(40)]


def test_worker_payloads_survive_a_real_pool():
    """Graphs below one shard run inline, so force multi-shard pool runs to
    prove the CSR snapshot, the Graph and sampler instances all pickle into
    worker processes and come back with identical buffers."""
    from repro.samplers.riondato_kornaropoulos import _rk_hits_shard_csr
    from repro.shortest_paths.dependencies import (
        dependency_sum_shard_csr,
        dependency_sum_shard_dict,
    )

    graph = barabasi_albert_graph(60, 2, seed=1)
    csr = graph.csr()
    shards = split_shards(list(range(60)), 16)
    inline = run_sharded(
        dependency_sum_shard_csr, shards, n_jobs=1, shared=(csr, 4)
    )
    pooled = run_sharded(
        dependency_sum_shard_csr, shards, n_jobs=2, shared=(csr, 4)
    )
    for a, b in zip(inline, pooled):
        assert np.array_equal(a, b)

    label_shards = split_shards(graph.vertices(), 16)
    inline_dict = run_sharded(dependency_sum_shard_dict, label_shards, n_jobs=1, shared=graph)
    pooled_dict = run_sharded(dependency_sum_shard_dict, label_shards, n_jobs=2, shared=graph)
    assert inline_dict == pooled_dict

    sample_shards = [(10, rng) for rng in shard_rngs(random.Random(6), 3)]
    inline_rk = run_sharded(_rk_hits_shard_csr, sample_shards, n_jobs=1, shared=(csr, 3))
    pooled_rk = run_sharded(
        _rk_hits_shard_csr,
        [(10, rng) for rng in shard_rngs(random.Random(6), 3)],
        n_jobs=3,
        shared=(csr, 3),
    )
    assert inline_rk == pooled_rk


# ----------------------------------------------------------------------
# Determinism: fixed-seed results identical across n_jobs and batch_size
# ----------------------------------------------------------------------


def _grid(reference_fn):
    """Assert ``reference_fn(n_jobs, batch_size)`` is constant over the grid."""
    reference = reference_fn(1, 1)
    for n_jobs in JOBS_GRID:
        for batch_size in BATCH_GRID:
            assert reference_fn(n_jobs, batch_size) == reference, (n_jobs, batch_size)
    return reference


@pytest.mark.parametrize("backend", ["dict", "csr"])
def test_exact_brandes_is_execution_invariant(backend):
    graph = barabasi_albert_graph(50, 2, seed=13)
    reference = _grid(
        lambda j, b: betweenness_centrality(graph, backend=backend, n_jobs=j, batch_size=b)
    )
    sequential = betweenness_centrality(graph, backend=backend)
    for v, score in sequential.items():
        assert math.isclose(reference[v], score, rel_tol=1e-9, abs_tol=1e-12)


@pytest.mark.parametrize("backend", ["dict", "csr"])
def test_all_dependencies_on_target_is_execution_invariant(backend):
    graph = barabasi_albert_graph(40, 2, seed=21)
    r = graph.vertices()[3]
    reference = _grid(
        lambda j, b: all_dependencies_on_target(graph, r, backend=backend, n_jobs=j, batch_size=b)
    )
    sequential = all_dependencies_on_target(graph, r, backend=backend)
    for v, score in sequential.items():
        assert math.isclose(reference[v], score, rel_tol=1e-9, abs_tol=1e-12)


@pytest.mark.parametrize("backend", ["dict", "csr"])
def test_group_betweenness_is_execution_invariant(backend):
    graph = barabasi_albert_graph(40, 2, seed=8)
    group = [graph.vertices()[0], graph.vertices()[4]]
    reference = _grid(
        lambda j, b: group_betweenness_centrality(
            graph, group, backend=backend, n_jobs=j, batch_size=b
        )
    )
    sequential = group_betweenness_centrality(graph, group, backend=backend)
    assert math.isclose(reference, sequential, rel_tol=1e-9)


@pytest.mark.parametrize("backend", ["dict", "csr"])
@pytest.mark.parametrize(
    "method", ["uniform-source", "distance", "rk", "kadabra", "mh", "mh-degree"]
)
def test_estimators_are_execution_invariant(backend, method):
    """The ISSUE 2 acceptance property: fixed-seed estimates are identical
    across n_jobs ∈ {1, 2, 4} and batch_size ∈ {1, 8, 64} on both backends."""
    graph = barabasi_albert_graph(30, 2, seed=5)
    r = graph.vertices()[6]
    _grid(
        lambda j, b: betweenness_single(
            graph, r, method=method, samples=40, seed=99,
            backend=backend, n_jobs=j, batch_size=b,
        ).estimate
    )


@pytest.mark.parametrize("method", ["uniform-source", "distance"])
def test_dependency_samplers_match_their_sequential_estimates(method):
    """Dependency-pass samplers draw their sources upfront through the same
    rng calls the sequential loop makes, so the engine changes the estimate
    by float re-association at most."""
    graph = barabasi_albert_graph(30, 2, seed=5)
    r = graph.vertices()[6]
    for backend in ("dict", "csr"):
        sequential = betweenness_single(
            graph, r, method=method, samples=40, seed=31, backend=backend
        ).estimate
        planned = betweenness_single(
            graph, r, method=method, samples=40, seed=31,
            backend=backend, n_jobs=2, batch_size=8,
        ).estimate
        assert math.isclose(sequential, planned, rel_tol=1e-9, abs_tol=1e-12)


def test_path_samplers_agree_across_backends_under_the_engine():
    """RK / KADABRA use per-shard child streams under the engine; the shard
    discipline is backend-agnostic, so dict and CSR still sample the same
    paths for a fixed seed."""
    graph = barabasi_albert_graph(30, 2, seed=5)
    r = graph.vertices()[6]
    for method in ("rk", "kadabra"):
        dict_est = betweenness_single(
            graph, r, method=method, samples=80, seed=3, backend="dict", n_jobs=2
        ).estimate
        csr_est = betweenness_single(
            graph, r, method=method, samples=80, seed=3, backend="csr", n_jobs=2
        ).estimate
        assert math.isclose(dict_est, csr_est, rel_tol=1e-9, abs_tol=1e-12)


def test_relative_betweenness_is_batch_invariant():
    graph = barabasi_albert_graph(30, 2, seed=17)
    refs = graph.vertices()[:3]
    results = []
    for batch_size in BATCH_GRID:
        sampler = JointSpaceMHSampler(batch_size=batch_size)
        estimate = sampler.estimate_relative(graph, refs, 150, seed=29)
        results.append(
            sorted((str(k), v) for k, v in estimate.ratios.items() if v == v)
        )
    assert results[0] == results[1] == results[2]


# ----------------------------------------------------------------------
# Oracle batch prefetch
# ----------------------------------------------------------------------


def test_oracle_prefetch_caches_and_counts_evaluations():
    graph = barabasi_albert_graph(25, 2, seed=2)
    oracle = DependencyOracle(graph, backend="csr", batch_size=8)
    sources = graph.vertices()[:10]
    assert oracle.prefetch(sources) == 10
    assert oracle.evaluations == 10
    # All prefetched: the point queries below are pure cache hits.
    for s in sources:
        oracle.dependency(s, graph.vertices()[-1])
    assert oracle.evaluations == 10
    assert oracle.prefetch(sources) == 0, "already-cached sources are skipped"


def test_oracle_prefetch_matches_per_source_vectors():
    graph = barabasi_albert_graph(25, 2, seed=2)
    batched = DependencyOracle(graph, backend="csr", batch_size=16)
    batched.prefetch(graph.vertices())
    sequential = DependencyOracle(graph, backend="csr")
    r = graph.vertices()[5]
    for s in graph.vertices():
        # The sparse-matmul prefetch path may differ from the per-source
        # kernel in the last ulp (fixed but different summation order).
        assert math.isclose(
            batched.dependency(s, r),
            sequential.dependency(s, r),
            rel_tol=1e-12,
            abs_tol=1e-15,
        )


def test_oracle_prefetch_respects_a_bounded_cache():
    """Prefetching past a bounded cache would evict the freshly computed
    vectors and double the passes; the oracle must cap at capacity."""
    graph = barabasi_albert_graph(25, 2, seed=2)
    oracle = DependencyOracle(graph, backend="csr", cache_size=4, batch_size=16)
    sources = graph.vertices()[:12]
    assert oracle.prefetch(sources) == 4
    r = graph.vertices()[-1]
    for s in sources[:4]:
        oracle.dependency(s, r)
    assert oracle.evaluations == 4, "capped prefetch must serve its block from cache"


def test_oracle_recompute_after_eviction_is_bit_identical():
    """A batch-configured oracle must return the same bits for a vector
    whether it came from a prefetch block or a post-eviction point query
    (otherwise estimates could depend on cache timing)."""
    graph = barabasi_albert_graph(25, 2, seed=2)
    oracle = DependencyOracle(graph, backend="csr", cache_size=1, batch_size=8)
    sources = graph.vertices()[:8]
    r = graph.vertices()[-1]
    prefetched = DependencyOracle(graph, backend="csr", batch_size=8)
    prefetched.prefetch(sources)
    for s in sources:
        assert oracle.dependency(s, r) == prefetched.dependency(s, r)


def test_oracle_prefetch_capacity_overflow_never_changes_vectors():
    """Multi-chain runs hammer a shared oracle with prefetch blocks larger
    than a bounded cache can hold; however the capacity overflows, evicts and
    recomputes interleave, every returned vector must equal the unbounded
    oracle's bit for bit (otherwise estimates would depend on cache timing)."""
    graph = barabasi_albert_graph(25, 2, seed=2)
    vertices = graph.vertices()
    r = vertices[-1]
    reference = DependencyOracle(graph, backend="csr", batch_size=8)
    bounded = DependencyOracle(graph, backend="csr", cache_size=3, batch_size=8)
    # Repeated oversized prefetches (2x capacity) interleaved with point
    # queries — the access pattern K chains sharing one oracle produce.
    for start in range(0, len(vertices), 6):
        block = vertices[start : start + 6]
        bounded.prefetch(block)
        for s in block:
            assert bounded.dependency(s, r) == reference.dependency(s, r)
    # Re-query everything after the cache churned through the whole graph.
    for s in vertices:
        assert bounded.dependency(s, r) == reference.dependency(s, r)


def test_chains_sharing_an_overflowing_oracle_match_private_oracles():
    """Chain-level version of the promise above: two chains sharing one
    tightly bounded oracle walk exactly the chains they walk with private
    unbounded oracles."""
    graph = barabasi_albert_graph(25, 2, seed=2)
    r = graph.vertices()[5]
    sampler = SingleSpaceMHSampler(batch_size=8)
    shared = DependencyOracle(graph, backend="csr", cache_size=2, batch_size=8)
    shared_first = sampler.run_chain(graph, r, 40, seed=1, oracle=shared)
    shared_second = sampler.run_chain(graph, r, 40, seed=2, oracle=shared)
    private_first = sampler.run_chain(graph, r, 40, seed=1)
    private_second = sampler.run_chain(graph, r, 40, seed=2)
    assert shared_first.states == private_first.states
    assert shared_second.states == private_second.states


def test_oracle_prefetch_is_a_noop_when_cache_disabled():
    graph = barabasi_albert_graph(25, 2, seed=2)
    oracle = DependencyOracle(graph, backend="csr", cache_size=0, batch_size=8)
    assert oracle.prefetch(graph.vertices()) == 0
    assert oracle.evaluations == 0


# ----------------------------------------------------------------------
# Oracle accounting: hit_rate and the prefetch eviction policy
# ----------------------------------------------------------------------


def test_oracle_hit_rate_after_prefetch_then_hit():
    """The regression that motivated the split counter: 10 prefetched passes
    followed by one cache-hit lookup used to report a hit rate of -9.0."""
    graph = barabasi_albert_graph(25, 2, seed=2)
    oracle = DependencyOracle(graph, backend="csr", batch_size=8)
    oracle.prefetch(graph.vertices()[:10])
    assert oracle.evaluations == 10
    assert oracle.prefetch_evaluations == 10
    assert oracle.hit_rate() == 0.0, "no lookups answered yet"
    oracle.dependency(graph.vertices()[0], graph.vertices()[-1])
    assert oracle.lookups == 1
    assert oracle.hit_rate() == 1.0
    # A genuine miss degrades the rate but keeps prefetch passes out of it.
    oracle.dependency(graph.vertices()[20], graph.vertices()[-1])
    assert oracle.hit_rate() == 0.5
    assert oracle.evaluations == 11, "evaluations still count every pass (E8)"


@given(
    st.lists(
        st.tuples(st.sampled_from(["prefetch", "lookup"]), st.integers(0, 24)),
        min_size=1,
        max_size=40,
    ),
    st.sampled_from([None, 0, 1, 3, 8]),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_oracle_hit_rate_stays_in_unit_interval(ops, cache_size):
    """Property: whatever the interleaving of prefetches and lookups (and
    whatever the cache bound), hit_rate() never leaves [0, 1]."""
    graph = barabasi_albert_graph(25, 2, seed=2)
    vertices = graph.vertices()
    oracle = DependencyOracle(
        graph, backend="csr", cache_size=cache_size, batch_size=4
    )
    for op, index in ops:
        if op == "prefetch":
            oracle.prefetch(vertices[index : index + 6])
        else:
            oracle.dependency(vertices[index], vertices[-1])
        assert 0.0 <= oracle.hit_rate() <= 1.0


def test_oracle_prefetch_caps_at_free_slots_then_half_capacity():
    """The occupancy-aware cap: free slots are filled first (evicting
    nothing), and on a full cache a prefetch claims at most half the
    capacity, so batching survives while the recent half of the cache —
    the MRU included — never gets flushed."""
    graph = barabasi_albert_graph(25, 2, seed=2)
    vertices = graph.vertices()
    oracle = DependencyOracle(graph, backend="csr", cache_size=4, batch_size=8)
    r = vertices[-1]
    oracle.dependency(vertices[0], r)  # occupancy 1
    assert oracle.prefetch(vertices[1:20]) == 3, "3 free slots -> 3 passes"
    # Everything cached so far is still cached: all four are pure hits.
    before = oracle.evaluations
    for s in vertices[:4]:
        oracle.dependency(s, r)
    assert oracle.evaluations == before
    # Full cache: the next block claims capacity // 2 = 2 slots (keeping
    # the batch kernels in play), evicting only the two LRU entries — the
    # two most recently touched vectors survive.
    assert oracle.prefetch(vertices[10:20]) == 2
    before = oracle.evaluations
    oracle.dependency(vertices[3], r)  # MRU of the pre-block cache
    oracle.dependency(vertices[2], r)  # second-newest
    assert oracle.evaluations == before


def test_oracle_prefetch_never_evicts_the_live_state_vector():
    """The chain access pattern behind the bug: the vector of the state the
    chain sits on must survive a full-capacity prefetch block, so revisits
    (rejection-heavy stretches re-propose the current vertex) stay free."""
    graph = barabasi_albert_graph(25, 2, seed=2)
    vertices = graph.vertices()
    r = vertices[-1]
    oracle = DependencyOracle(graph, backend="csr", cache_size=3, batch_size=4)
    state = vertices[0]
    oracle.dependency(state, r)  # the live state's vector
    oracle.prefetch(vertices[1:10])  # an over-capacity proposal block
    before = oracle.evaluations
    oracle.dependency(state, r)  # the revisit an earlier revision re-paid
    assert oracle.evaluations == before


def test_oracle_bounded_cache_chain_estimate_and_passes():
    """Chain-level acceptance: on a rejection-heavy chain a bounded cache
    yields the same estimate as an unbounded one, and — now that prefetch
    stopped flushing the cache — strictly fewer passes than the
    every-query-is-a-miss worst case."""
    graph = barabasi_albert_graph(25, 2, seed=6)
    r = graph.vertices()[0]  # early BA vertex: a hub, so most proposals lose
    iterations = 120
    sampler_kwargs = dict(batch_size=4, backend="csr")
    unbounded = SingleSpaceMHSampler(**sampler_kwargs).run_chain(
        graph, r, iterations, seed=17
    )
    bounded = SingleSpaceMHSampler(cache_size=4, **sampler_kwargs).run_chain(
        graph, r, iterations, seed=17
    )
    assert bounded.states == unbounded.states, "cache bound must be result-neutral"
    assert (
        sum(1 for s in bounded.states[1:] if not s.accepted) > iterations / 3
    ), "the scenario should be rejection-heavy, or this test checks nothing"
    assert bounded.evaluations < iterations + 1, (
        "revisited sources must hit the bounded cache; a full-capacity "
        "prefetch flushing the cache would push this to the miss-only count"
    )


# ----------------------------------------------------------------------
# sample_shards: arithmetic shard sizing
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "num_samples", [0, 1, 255, 256, 257, 512, 600, 1024, 10_000]
)
def test_sample_shards_matches_the_list_based_implementation(num_samples):
    """sample_shards computes shard lengths arithmetically; the payloads must
    pin the old list-materialising implementation exactly — same counts,
    same child streams, same parent-stream advancement."""
    from repro.execution import sample_shards

    rng_new, rng_old = random.Random(97), random.Random(97)
    new = sample_shards(num_samples, rng_new)
    old_shards = split_shards(list(range(num_samples)))
    old = [
        (len(shard), shard_rng)
        for shard, shard_rng in zip(old_shards, shard_rngs(rng_old, len(old_shards)))
    ]
    assert [count for count, _ in new] == [count for count, _ in old]
    assert [shard_rng.random() for _, shard_rng in new] == [
        shard_rng.random() for _, shard_rng in old
    ]
    assert rng_new.random() == rng_old.random(), "parent streams must stay in lockstep"


def test_sample_shards_cost_is_per_shard_not_per_sample():
    """The satellite's point: shard sizing is O(#shards).  A multi-million
    budget resolves through arithmetic — the old implementation materialised
    ``list(range(budget))`` just to count it."""
    import tracemalloc

    from repro.execution import sample_shards

    budget = 2_560_000 + 7
    tracemalloc.start()
    shards = sample_shards(budget, random.Random(1))
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    assert len(shards) == budget // DEFAULT_SHARD_SIZE + 1
    assert shards[0][0] == DEFAULT_SHARD_SIZE
    assert shards[-1][0] == budget % DEFAULT_SHARD_SIZE == 7
    # The legitimate cost is the ~10k child generators (a Mersenne-Twister
    # state is ~2.5 KB, so ~25 MB); a 2.56M-element index list would add
    # ~70 MB of list + int objects on CPython and blow this bound.
    assert peak < 40_000_000


# ----------------------------------------------------------------------
# Adaptive batch-size selection
# ----------------------------------------------------------------------


def test_calibrate_batch_size_returns_a_candidate():
    from repro.execution import DEFAULT_BATCH_CANDIDATES, calibrate_batch_size

    graph = barabasi_albert_graph(60, 2, seed=1)
    chosen = calibrate_batch_size(graph, probe_sources=16)
    assert chosen in DEFAULT_BATCH_CANDIDATES


def test_probe_covers_every_measurable_candidate():
    from repro.execution import probe_batch_sizes

    graph = barabasi_albert_graph(40, 2, seed=1)
    timings = probe_batch_sizes(graph, candidates=(1, 4, 16), probe_sources=16)
    assert [size for size, _ in timings] == [1, 4, 16]
    assert all(seconds >= 0.0 for _, seconds in timings)


def test_probe_drops_candidates_it_cannot_fill():
    """A batch larger than the source budget runs the identical kernel call
    as the budget-sized one — timing it would crown a size on pure noise."""
    from repro.execution import calibrate_batch_size, probe_batch_sizes

    graph = barabasi_albert_graph(40, 2, seed=1)
    timings = probe_batch_sizes(graph, candidates=(1, 4, 16, 64), probe_sources=8)
    assert [size for size, _ in timings] == [1, 4]
    # Every candidate over budget: the smallest is the only honest option.
    fallback = probe_batch_sizes(graph, candidates=(16, 64), probe_sources=8)
    assert [size for size, _ in fallback] == [16]
    assert calibrate_batch_size(graph, candidates=(16, 64), probe_sources=8) == 16


def test_calibrate_accepts_a_csr_snapshot():
    from repro.execution import calibrate_batch_size

    csr = barabasi_albert_graph(40, 2, seed=1).csr()
    assert calibrate_batch_size(csr, candidates=(1, 8), probe_sources=8) in (1, 8)


def test_calibrated_size_never_changes_the_estimate():
    """The point of 'auto': whatever size the noisy probe picks, the engine's
    per-row bit-identity makes the estimate independent of it."""
    graph = barabasi_albert_graph(30, 2, seed=5)
    r = graph.vertices()[6]
    estimates = {
        batch: betweenness_single(
            graph, r, method="mh", samples=40, seed=99, backend="csr", batch_size=batch
        ).estimate
        for batch in (1, 8, 16, 32, 64)
    }
    assert len(set(estimates.values())) == 1


def test_calibrate_falls_back_to_one_on_dict_backend():
    from repro.execution import calibrate_batch_size

    graph = barabasi_albert_graph(30, 2, seed=1)
    assert calibrate_batch_size(graph, backend="dict") == 1


def test_probe_validates_its_knobs():
    from repro.execution import probe_batch_sizes

    graph = barabasi_albert_graph(20, 2, seed=1)
    with pytest.raises(ConfigurationError):
        probe_batch_sizes(graph, candidates=())
    with pytest.raises(ConfigurationError):
        probe_batch_sizes(graph, candidates=(0,))
    with pytest.raises(ConfigurationError):
        probe_batch_sizes(graph, probe_sources=0)
    with pytest.raises(ConfigurationError):
        probe_batch_sizes(graph, repeats=0)


def test_mh_prefetch_reduces_passes_without_changing_the_chain():
    graph = barabasi_albert_graph(30, 2, seed=4)
    r = graph.vertices()[5]
    one = SingleSpaceMHSampler(batch_size=1).estimate(graph, r, 60, seed=11)
    big = SingleSpaceMHSampler(batch_size=16).estimate(graph, r, 60, seed=11)
    assert one.estimate == big.estimate
    assert big.diagnostics["evaluations"] == one.diagnostics["evaluations"]


# ----------------------------------------------------------------------
# Kernel knob threading + worker-count autotuning (ISSUE 7)
# ----------------------------------------------------------------------


def test_execution_plan_validates_and_carries_the_kernel():
    with pytest.raises(ConfigurationError):
        ExecutionPlan(kernel="fpga")
    assert ExecutionPlan().kernel == "auto"
    assert ExecutionPlan(kernel="compiled").kernel == "compiled"
    # Like shared_cache, the kernel never engages the engine by itself...
    assert resolve_plan(None, kernel="compiled") is None
    # ... but it fills the field of a plan another knob engaged.
    plan = resolve_plan(None, batch_size=8, kernel="compiled")
    assert plan.kernel == "compiled" and plan.batch_size == 8


def test_shard_worker_payloads_accept_the_kernel_element():
    """Shard workers read the optional kernel payload element; old-style
    payloads without it keep working (the cross-version cache contract)."""
    from repro.shortest_paths.dependencies import (
        dependency_at_target_shard_csr,
        dependency_sum_shard_csr,
    )

    csr = barabasi_albert_graph(24, 2, seed=9).csr()
    shard = list(range(8))
    legacy = dependency_sum_shard_csr((csr, 4), shard)
    tagged = dependency_sum_shard_csr((csr, 4, "csr"), shard)
    assert np.array_equal(legacy, tagged)
    legacy_t = dependency_at_target_shard_csr((csr, 4, 3), shard)
    tagged_t = dependency_at_target_shard_csr((csr, 4, 3, "csr"), shard)
    assert legacy_t == tagged_t


def test_kernel_knob_never_changes_engine_results(monkeypatch):
    """kernel ∈ {csr, compiled} × n_jobs grid: identical estimates (the
    compiled rung is driven through its pure-Python bodies here)."""
    from repro.graphs import csr as csr_module

    monkeypatch.setattr(csr_module, "_COMPILED_OK", True)
    graph = _random_unweighted(21)
    r = graph.vertices()[3]
    estimates = {
        (kernel, jobs): betweenness_single(
            graph, r, method="uniform-source", samples=40, seed=13,
            backend="csr", batch_size=8, n_jobs=jobs, kernel=kernel,
        ).estimate
        for kernel in ("csr", "compiled")
        for jobs in JOBS_GRID
    }
    assert len(set(estimates.values())) == 1


def test_default_jobs_candidates_shape():
    from repro.execution import default_jobs_candidates

    candidates = default_jobs_candidates()
    assert candidates[0] == 1
    assert all(a < b for a, b in zip(candidates, candidates[1:]))
    assert all(isinstance(c, int) and c >= 1 for c in candidates)


def test_probe_n_jobs_times_every_candidate():
    from repro.execution import probe_n_jobs

    graph = barabasi_albert_graph(30, 2, seed=2)
    timings = probe_n_jobs(graph, candidates=(1, 2), probe_sources=8)
    assert [jobs for jobs, _ in timings] == [1, 2]
    assert all(seconds >= 0.0 for _, seconds in timings)


def test_probe_n_jobs_fast_paths():
    from repro.execution import probe_n_jobs

    graph = barabasi_albert_graph(30, 2, seed=2)
    # dict backend: parallel sharding never applies.
    assert probe_n_jobs(graph, backend="dict", candidates=(1, 2)) == [(1, 0.0)]
    # nothing beyond one worker to sweep: no pools spun up.
    assert probe_n_jobs(graph, candidates=(1,)) == [(1, 0.0)]


def test_probe_n_jobs_validates_its_knobs():
    from repro.execution import probe_n_jobs

    graph = barabasi_albert_graph(20, 2, seed=1)
    with pytest.raises(ConfigurationError):
        probe_n_jobs(graph, candidates=(0,))
    with pytest.raises(ConfigurationError):
        probe_n_jobs(graph, probe_sources=0)
    with pytest.raises(ConfigurationError):
        probe_n_jobs(graph, repeats=0)
    with pytest.raises(ConfigurationError):
        probe_n_jobs(graph, batch_size=0)


def test_calibrate_n_jobs_returns_a_candidate_and_breaks_ties_down(monkeypatch):
    from repro.execution import autotune, calibrate_n_jobs

    graph = barabasi_albert_graph(30, 2, seed=2)
    assert calibrate_n_jobs(graph, candidates=(1, 2), probe_sources=8) in (1, 2)
    # Deterministic tie: the smaller worker count must win.
    monkeypatch.setattr(
        autotune, "probe_n_jobs", lambda *a, **k: [(4, 1.0), (2, 1.0), (1, 2.0)]
    )
    assert calibrate_n_jobs(graph) == 2


def test_calibrated_jobs_never_change_the_estimate():
    """The n_jobs twin of the batch-size contract: whatever count the noisy
    probe picks, the sharded engine's merge order is n_jobs-invariant."""
    graph = barabasi_albert_graph(30, 2, seed=5)
    r = graph.vertices()[6]
    estimates = {
        jobs: betweenness_single(
            graph, r, method="uniform-source", samples=40, seed=99,
            backend="csr", batch_size=8, n_jobs=jobs,
        ).estimate
        for jobs in JOBS_GRID
    }
    assert len(set(estimates.values())) == 1


def test_default_threads_candidates_shape():
    import multiprocessing

    from repro.execution import default_threads_candidates

    candidates = default_threads_candidates()
    assert candidates[0] == 1
    assert all(a < b for a, b in zip(candidates, candidates[1:]))
    assert all(isinstance(c, int) and c >= 1 for c in candidates)
    # The thread budget composes with worker processes: claiming every
    # core for processes leaves exactly one thread per worker.
    cores = multiprocessing.cpu_count()
    assert default_threads_candidates(n_jobs=cores) == (1,)
    with pytest.raises(ConfigurationError):
        default_threads_candidates(n_jobs=0)


def test_probe_kernel_threads_fast_paths():
    from repro.execution import probe_kernel_threads

    graph = barabasi_albert_graph(30, 2, seed=2)
    # dict backend: the compiled batch kernels never run.
    assert probe_kernel_threads(graph, backend="dict", candidates=(1, 2)) == [(1, 0.0)]
    # numpy rung: the prange kernels are out of reach by construction.
    assert probe_kernel_threads(graph, kernel="csr", candidates=(1, 2)) == [(1, 0.0)]
    # nothing beyond one thread to sweep: no kernels timed.
    assert probe_kernel_threads(graph, candidates=(1,)) == [(1, 0.0)]


def test_probe_kernel_threads_validates_its_knobs():
    from repro.execution import probe_kernel_threads

    graph = barabasi_albert_graph(20, 2, seed=1)
    with pytest.raises(ConfigurationError):
        probe_kernel_threads(graph, candidates=(0,))
    with pytest.raises(ConfigurationError):
        probe_kernel_threads(graph, probe_sources=0)
    with pytest.raises(ConfigurationError):
        probe_kernel_threads(graph, repeats=0)
    with pytest.raises(ConfigurationError):
        probe_kernel_threads(graph, batch_size=0)
    with pytest.raises(ConfigurationError):
        probe_kernel_threads(graph, n_jobs=0)


def test_calibrate_kernel_threads_returns_a_candidate_and_breaks_ties_down(monkeypatch):
    from repro.execution import autotune, calibrate_kernel_threads

    graph = barabasi_albert_graph(30, 2, seed=2)
    assert calibrate_kernel_threads(graph, candidates=(1, 2), probe_sources=8) in (1, 2)
    # Deterministic tie: the smaller thread count must win.
    monkeypatch.setattr(
        autotune, "probe_kernel_threads", lambda *a, **k: [(4, 1.0), (2, 1.0), (1, 2.0)]
    )
    assert calibrate_kernel_threads(graph) == 2


def test_kernel_threads_auto_resolves_and_changes_no_result():
    """kernel_threads='auto' at the API resolves to a concrete count and the
    estimate equals every explicit count — the knob is result-neutral."""
    graph = barabasi_albert_graph(30, 2, seed=5)
    r = graph.vertices()[6]
    reference = betweenness_single(
        graph, r, method="uniform-source", samples=40, seed=99,
        backend="csr", batch_size=8,
    )
    for threads in ("auto", 1, 2, 4):
        result = betweenness_single(
            graph, r, method="uniform-source", samples=40, seed=99,
            backend="csr", batch_size=8, kernel_threads=threads,
        )
        assert result.estimate == reference.estimate, threads


def test_kernel_threads_auto_on_dict_backend_skips_the_probe():
    from repro.centrality.api import _resolve_kernel_threads

    graph = barabasi_albert_graph(20, 2, seed=3)
    assert _resolve_kernel_threads(graph, "auto", "dict", "auto", None) == 1
    assert _resolve_kernel_threads(graph, 3, "csr", "auto", None) == 3
    assert _resolve_kernel_threads(graph, None, "csr", "auto", None) is None


def test_n_jobs_auto_resolves_and_engages_the_engine():
    """n_jobs='auto' at the API resolves to a concrete count (never None —
    the engine must engage so results stay n_jobs-invariant) and returns
    the same estimate as the explicit counts."""
    graph = barabasi_albert_graph(30, 2, seed=5)
    r = graph.vertices()[6]
    auto = betweenness_single(
        graph, r, method="uniform-source", samples=40, seed=99,
        backend="csr", batch_size=8, n_jobs="auto",
    )
    explicit = betweenness_single(
        graph, r, method="uniform-source", samples=40, seed=99,
        backend="csr", batch_size=8, n_jobs=1,
    )
    assert auto.estimate == explicit.estimate


def test_n_jobs_auto_on_dict_backend_skips_the_probe():
    from repro.centrality.api import _resolve_n_jobs

    graph = barabasi_albert_graph(20, 2, seed=3)
    assert _resolve_n_jobs(graph, "auto", "dict") == 1
    assert _resolve_n_jobs(graph, 3, "csr") == 3  # explicit ints pass through
    assert _resolve_n_jobs(graph, None, "csr") is None


def test_probe_shard_sizes_is_a_diagnostic_only():
    """Times every candidate; the library deliberately exposes no
    calibrate_shard_size (the constant is part of the determinism contract)."""
    import repro.execution as execution
    from repro.execution import probe_shard_sizes

    graph = barabasi_albert_graph(30, 2, seed=2)
    timings = probe_shard_sizes(graph, candidates=(8, 16), probe_sources=8)
    assert [size for size, _ in timings] == [8, 16]
    assert all(seconds >= 0.0 for _, seconds in timings)
    assert not hasattr(execution, "calibrate_shard_size")
    with pytest.raises(ConfigurationError):
        probe_shard_sizes(graph, candidates=())
    with pytest.raises(ConfigurationError):
        probe_shard_sizes(graph, candidates=(0,))
