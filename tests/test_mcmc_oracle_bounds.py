"""Tests for the dependency oracle and the theoretical bounds (Theorems 1, 2, 4)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, SamplingError
from repro.exact import betweenness_of_vertex
from repro.graphs import barbell_graph, path_graph, star_graph
from repro.graphs.generators import double_star_graph
from repro.mcmc import (
    DependencyOracle,
    epsilon_for_samples,
    mcmc_error_probability,
    mu_of_vertex,
    mu_statistics,
    required_samples,
)
from repro.shortest_paths import all_dependencies_on_target


class TestDependencyOracle:
    def test_matches_direct_computation(self, barbell):
        oracle = DependencyOracle(barbell)
        direct = all_dependencies_on_target(barbell, 5)
        for v in barbell.vertices():
            assert oracle.dependency(v, 5) == pytest.approx(direct[v])

    def test_dependency_on_self_is_zero(self, barbell):
        assert DependencyOracle(barbell).dependency(3, 3) == 0.0

    def test_cache_hit_counting(self, barbell):
        oracle = DependencyOracle(barbell)
        oracle.dependency(0, 5)
        oracle.dependency(0, 6)
        oracle.dependency(0, 5)
        assert oracle.evaluations == 1
        assert oracle.lookups == 3
        assert oracle.hit_rate() == pytest.approx(2 / 3)

    def test_cache_disabled(self, barbell):
        oracle = DependencyOracle(barbell, cache_size=0)
        oracle.dependency(0, 5)
        oracle.dependency(0, 5)
        assert oracle.evaluations == 2
        assert not oracle.cache_enabled

    def test_lru_eviction(self, barbell):
        oracle = DependencyOracle(barbell, cache_size=2)
        oracle.dependency(0, 5)
        oracle.dependency(1, 5)
        oracle.dependency(2, 5)  # evicts vertex 0
        oracle.dependency(0, 5)  # must recompute
        assert oracle.evaluations == 4

    def test_clear_resets_counters(self, barbell):
        oracle = DependencyOracle(barbell)
        oracle.dependency(0, 5)
        oracle.clear()
        assert oracle.evaluations == 0 and oracle.lookups == 0

    def test_dependency_vector_covers_all_targets(self, barbell):
        vector = DependencyOracle(barbell).dependency_vector(0)
        assert set(vector) == set(barbell.vertices())


class TestMuStatistics:
    def test_star_center_mu(self, star6):
        # every leaf has dependency 5 on the centre, the centre itself 0:
        # max = 5, mean = 30/7, mu = 7/6.
        stats = mu_statistics(star6, 0)
        assert stats.mu == pytest.approx(7.0 / 6.0)
        assert stats.max_dependency == pytest.approx(5.0)
        assert stats.support_size == 6

    def test_mu_at_least_one(self, barbell, small_ba):
        for graph in (barbell, small_ba):
            from repro.datasets import positive_betweenness_vertices

            for r in list(positive_betweenness_vertices(graph))[:5]:
                assert mu_of_vertex(graph, r) >= 1.0

    def test_zero_betweenness_vertex_raises(self, star6):
        with pytest.raises(SamplingError):
            mu_statistics(star6, 1)

    def test_total_matches_unnormalised_betweenness(self, barbell):
        stats = mu_statistics(barbell, 5)
        n = barbell.number_of_vertices()
        assert stats.total_dependency / (n * (n - 1)) == pytest.approx(
            betweenness_of_vertex(barbell, 5)
        )

    def test_balanced_separator_mu_stays_constant_as_graph_grows(self):
        # Theorem 2: for the centre of a double star (a balanced separator),
        # mu does not grow with the graph size.
        mus = []
        for leaves in (10, 20, 40, 80):
            graph = double_star_graph(leaves, leaves)
            mus.append(mu_of_vertex(graph, 0))
        assert max(mus) - min(mus) < 0.6
        assert max(mus) < 3.0

    def test_peripheral_vertex_mu_grows(self):
        # For a path end's neighbour, dependencies are maximally skewed and
        # mu grows roughly linearly with n (no Theorem 2 guarantee).
        mus = []
        for n in (11, 21, 41):
            graph = path_graph(n)
            mus.append(mu_of_vertex(graph, 1))
        assert mus[2] > mus[1] > mus[0]
        assert mus[2] > 2 * mus[0]


class TestBoundFormulas:
    def test_error_probability_decreases_with_samples(self):
        values = [mcmc_error_probability(t, 0.05, 2.0) for t in (10, 100, 1000, 10000)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.05

    def test_error_probability_vacuous_region(self):
        # When 2 eps / mu <= 3 / T the bound is vacuous and clamped at 1.
        assert mcmc_error_probability(10, 0.01, 10.0) == 1.0

    def test_error_probability_validation(self):
        with pytest.raises(ConfigurationError):
            mcmc_error_probability(0, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            mcmc_error_probability(10, -0.1, 1.0)
        with pytest.raises(ConfigurationError):
            mcmc_error_probability(10, 0.1, 0.0)

    def test_required_samples_formula(self):
        # direct check of Equation 14
        mu, eps, delta = 2.0, 0.05, 0.1
        expected = math.ceil(mu * mu / (2 * eps * eps) * math.log(2 / delta))
        assert required_samples(eps, delta, mu) == expected

    def test_required_samples_monotone_in_mu(self):
        assert required_samples(0.05, 0.1, 4.0) > required_samples(0.05, 0.1, 1.0)

    def test_required_samples_validation(self):
        with pytest.raises(ConfigurationError):
            required_samples(0.0, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            required_samples(0.1, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            required_samples(0.1, 0.1, -1.0)

    def test_epsilon_for_samples_inverts_required_samples(self):
        mu, delta = 1.8, 0.1
        samples = required_samples(0.07, delta, mu)
        epsilon = epsilon_for_samples(samples, delta, mu)
        assert epsilon <= 0.07 + 1e-9

    def test_bound_consistency(self):
        # Plugging the Equation 14 sample count back into the Equation 12
        # bound (neglecting the 3/T term as the paper does) yields <= delta.
        mu, eps, delta = 1.5, 0.05, 0.2
        samples = required_samples(eps, delta, mu)
        bound = mcmc_error_probability(samples, eps, mu)
        # the 3/T term slightly weakens the bound, allow a modest slack
        assert bound <= delta * 1.5
