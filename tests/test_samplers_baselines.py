"""Tests for the baseline approximate estimators (uniform, distance-based, RK, KADABRA, oracle)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SamplingError
from repro.exact import betweenness_centrality, betweenness_of_vertex
from repro.graphs import barbell_graph, complete_graph, path_graph, star_graph
from repro.samplers import (
    DistanceBasedSampler,
    ExhaustiveSourceEstimator,
    ImportanceSamplingEstimator,
    KadabraSampler,
    OptimalSourceSampler,
    RiondatoKornaropoulosSampler,
    UniformSourceSampler,
    rk_sample_size,
    vertex_diameter_estimate,
)


class TestUniformSourceSampler:
    def test_full_enumeration_without_replacement_is_exact(self, barbell):
        sampler = UniformSourceSampler(with_replacement=False)
        n = barbell.number_of_vertices()
        result = sampler.estimate_all(barbell, n, seed=1)
        exact = betweenness_centrality(barbell)
        for v in barbell.vertices():
            assert result[v] == pytest.approx(exact[v])

    def test_single_vertex_full_enumeration_is_exact(self, barbell):
        sampler = UniformSourceSampler(with_replacement=False)
        n = barbell.number_of_vertices()
        result = sampler.estimate(barbell, 5, n, seed=1)
        assert result.estimate == pytest.approx(betweenness_of_vertex(barbell, 5))

    def test_with_replacement_converges(self, barbell):
        sampler = UniformSourceSampler()
        exact = betweenness_of_vertex(barbell, 5)
        result = sampler.estimate(barbell, 5, 600, seed=3)
        assert result.estimate == pytest.approx(exact, abs=0.1)

    def test_without_replacement_caps_samples(self, path5):
        sampler = UniformSourceSampler(with_replacement=False)
        with pytest.raises(ConfigurationError):
            sampler.estimate_all(path5, 10, seed=1)

    def test_zero_samples_rejected(self, path5):
        with pytest.raises(ConfigurationError):
            UniformSourceSampler().estimate(path5, 2, 0)

    def test_result_metadata(self, path5):
        result = UniformSourceSampler().estimate(path5, 2, 5, seed=1)
        assert result.method == "uniform-source"
        assert result.samples == 5
        assert result.elapsed_seconds >= 0.0
        assert float(result) == result.estimate

    def test_map_estimate_helpers(self, path5):
        result = UniformSourceSampler().estimate_all(path5, 5, seed=1)
        assert result[2] == result.estimates[2]
        assert set(result.restricted_to([1, 3])) == {1, 3}


class TestDistanceBasedSampler:
    def test_unbiasedness_on_path(self, path5):
        # With many samples the importance-weighted estimate converges.
        sampler = DistanceBasedSampler()
        exact = betweenness_of_vertex(path5, 2)
        result = sampler.estimate(path5, 2, 800, seed=5)
        assert result.estimate == pytest.approx(exact, abs=0.08)

    def test_uniform_variant(self, barbell):
        sampler = DistanceBasedSampler(uniform=True)
        exact = betweenness_of_vertex(barbell, 5)
        result = sampler.estimate(barbell, 5, 600, seed=2)
        assert result.estimate == pytest.approx(exact, abs=0.1)
        assert result.method == "uniform-importance"

    def test_zero_betweenness_target_estimates_zero(self, star6):
        result = DistanceBasedSampler().estimate(star6, 3, 50, seed=1)
        assert result.estimate == 0.0

    def test_degenerate_distribution_raises(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_vertex(0)
        g.add_vertex(1)
        g.add_edge(0, 1)
        # target 0 in a 2-vertex graph: the only other vertex is at distance 1,
        # so sampling works; shrink to an isolated situation instead.
        lonely = Graph()
        lonely.add_vertex("a")
        lonely.add_vertex("b")
        sampler = DistanceBasedSampler()
        with pytest.raises(SamplingError):
            sampler.estimate(lonely, "a", 10, seed=1)

    def test_custom_mass_function(self, barbell):
        estimator = ImportanceSamplingEstimator(
            lambda graph, r: {v: 1.0 for v in graph.vertices() if v != r},
            name="custom",
        )
        result = estimator.estimate(barbell, 5, 400, seed=7)
        assert result.method == "custom"
        assert result.estimate == pytest.approx(betweenness_of_vertex(barbell, 5), abs=0.15)

    def test_invalid_sample_count(self, path5):
        with pytest.raises(ConfigurationError):
            DistanceBasedSampler().estimate(path5, 2, 0)


class TestRiondatoKornaropoulos:
    def test_estimates_are_probabilities(self, barbell):
        result = RiondatoKornaropoulosSampler().estimate_all(barbell, 200, seed=1)
        assert all(0.0 <= v <= 1.0 for v in result.estimates.values())

    def test_convergence_on_star_center(self, star6):
        exact = betweenness_of_vertex(star6, 0)
        result = RiondatoKornaropoulosSampler().estimate(star6, 0, 800, seed=3)
        assert result.estimate == pytest.approx(exact, abs=0.08)

    def test_complete_graph_gives_zero(self):
        g = complete_graph(6)
        result = RiondatoKornaropoulosSampler().estimate_all(g, 100, seed=1)
        assert all(v == 0.0 for v in result.estimates.values())

    def test_sample_size_formula_monotone_in_epsilon(self):
        assert rk_sample_size(10, 0.05, 0.1) > rk_sample_size(10, 0.1, 0.1)

    def test_sample_size_formula_monotone_in_delta(self):
        assert rk_sample_size(10, 0.1, 0.01) > rk_sample_size(10, 0.1, 0.2)

    def test_sample_size_validation(self):
        with pytest.raises(ConfigurationError):
            rk_sample_size(10, 0.0, 0.1)
        with pytest.raises(ConfigurationError):
            rk_sample_size(10, 0.1, 1.5)

    def test_vertex_diameter_estimate_upper_bounds_truth(self, path5):
        # true vertex diameter of the 5-path is 5; the 2-approximation must not under-estimate
        assert vertex_diameter_estimate(path5, seed=1) >= 5

    def test_samples_for_accuracy(self, barbell):
        sampler = RiondatoKornaropoulosSampler()
        assert sampler.samples_for_accuracy(barbell, 0.1, 0.1, seed=1) >= 1

    def test_small_graph_rejected(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_vertex(0)
        with pytest.raises(ConfigurationError):
            RiondatoKornaropoulosSampler().estimate_all(g, 10)


class TestKadabra:
    def test_convergence_on_barbell_bridge(self, barbell):
        exact = betweenness_of_vertex(barbell, 5)
        result = KadabraSampler().estimate(barbell, 5, 800, seed=2)
        assert result.estimate == pytest.approx(exact, abs=0.1)

    def test_reports_touched_edges(self, barbell):
        result = KadabraSampler().estimate_all(barbell, 50, seed=1)
        assert result.diagnostics["touched_edges"] > 0

    def test_adaptive_mode_can_stop_early(self, star6):
        sampler = KadabraSampler(adaptive=True, epsilon=0.2, delta=0.2)
        result = sampler.estimate(star6, 0, 5000, seed=4)
        assert result.samples < 5000

    def test_non_adaptive_uses_exact_budget(self, star6):
        result = KadabraSampler().estimate(star6, 0, 120, seed=4)
        assert result.samples == 120

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            KadabraSampler(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            KadabraSampler(delta=2.0)


class TestOracles:
    def test_exhaustive_equals_exact(self, barbell):
        estimator = ExhaustiveSourceEstimator()
        for v in [0, 5, 6]:
            assert estimator.estimate(barbell, v).estimate == pytest.approx(
                betweenness_of_vertex(barbell, v)
            )

    def test_optimal_sampler_zero_variance(self, barbell):
        sampler = OptimalSourceSampler()
        exact = betweenness_of_vertex(barbell, 5)
        for seed in (1, 2, 3):
            result = sampler.estimate(barbell, 5, 10, seed=seed)
            assert result.estimate == pytest.approx(exact)

    def test_optimal_sampler_degenerate_target(self, star6):
        with pytest.raises(SamplingError):
            OptimalSourceSampler().estimate(star6, 1, 10, seed=1)

    def test_optimal_distribution_sums_to_one(self, barbell):
        distribution = OptimalSourceSampler().distribution(barbell, 5)
        assert sum(distribution.values()) == pytest.approx(1.0)
