"""Tests for graph statistics and helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, GraphStructureError
from repro.graphs import Graph, complete_graph, path_graph, star_graph
from repro.graphs.utils import (
    average_clustering,
    average_degree,
    clustering_coefficient,
    degree_histogram,
    density,
    ensure_connected,
    graph_summary,
    random_vertex,
    random_vertices,
    triangle_count,
)


class TestStatistics:
    def test_density_complete(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)

    def test_density_path(self, path5):
        assert density(path5) == pytest.approx(4 / 10)

    def test_density_tiny(self):
        g = Graph()
        g.add_vertex(0)
        assert density(g) == 0.0

    def test_average_degree(self, star6):
        # star: centre degree 6, six leaves degree 1
        assert average_degree(star6) == pytest.approx(12 / 7)

    def test_average_degree_empty(self):
        assert average_degree(Graph()) == 0.0

    def test_degree_histogram(self, star6):
        assert degree_histogram(star6) == {6: 1, 1: 6}

    def test_graph_summary_keys(self, barbell):
        summary = graph_summary(barbell)
        assert summary["vertices"] == 12.0
        assert summary["components"] == 1.0
        assert summary["max_degree"] == 5.0
        assert 0.0 < summary["density"] < 1.0


class TestRandomSelection:
    def test_random_vertex_is_member(self, barbell):
        assert random_vertex(barbell, seed=1) in barbell

    def test_random_vertex_empty_graph(self):
        with pytest.raises(GraphStructureError):
            random_vertex(Graph())

    def test_random_vertices_distinct(self, barbell):
        chosen = random_vertices(barbell, 5, seed=2)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5

    def test_random_vertices_too_many(self, path5):
        with pytest.raises(ConfigurationError):
            random_vertices(path5, 9)

    def test_random_vertices_reproducible(self, barbell):
        assert random_vertices(barbell, 4, seed=3) == random_vertices(barbell, 4, seed=3)


class TestEnsureConnected:
    def test_connected_graph_passes(self, path5):
        ensure_connected(path5)  # no exception

    def test_disconnected_graph_raises(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(5)
        with pytest.raises(GraphStructureError):
            ensure_connected(g)


class TestClustering:
    def test_triangle_count_in_clique(self):
        g = complete_graph(4)
        assert triangle_count(g, 0) == 3

    def test_triangle_count_in_star(self, star6):
        assert triangle_count(star6, 0) == 0

    def test_clustering_coefficient_clique(self):
        assert clustering_coefficient(complete_graph(5), 0) == pytest.approx(1.0)

    def test_clustering_coefficient_degree_one(self, star6):
        assert clustering_coefficient(star6, 1) == 0.0

    def test_average_clustering_bounds(self, small_ws):
        value = average_clustering(small_ws)
        assert 0.0 <= value <= 1.0

    def test_average_clustering_empty(self):
        assert average_clustering(Graph()) == 0.0
