"""Tests for degree-one compression and the exact reconstruction of betweenness."""

from __future__ import annotations

import pytest

from repro.exact import (
    betweenness_centrality,
    betweenness_with_compression,
    compress_degree_one,
)
from repro.graphs import (
    Graph,
    barabasi_albert_graph,
    barbell_graph,
    binary_tree,
    lollipop_graph,
    path_graph,
    random_tree,
    star_graph,
)


class TestCompressDegreeOne:
    def test_barbell_has_no_pendants(self, barbell):
        compressed = compress_degree_one(barbell)
        assert compressed.removed == []
        assert compressed.graph.number_of_vertices() == barbell.number_of_vertices()
        assert compressed.compression_ratio() == 1.0

    def test_star_collapses_to_two_vertices(self, star6):
        compressed = compress_degree_one(star6)
        assert compressed.graph.number_of_vertices() == 2
        assert compressed.multiplicity[0] >= 6.0

    def test_lollipop_strips_the_stick(self):
        g = lollipop_graph(5, 4)
        compressed = compress_degree_one(g)
        assert compressed.graph.number_of_vertices() == 5
        # the clique vertex anchoring the stick represents the whole stick
        assert compressed.multiplicity[4] == pytest.approx(5.0)

    def test_multiplicities_sum_to_original_size(self):
        for builder in (lambda: lollipop_graph(4, 6), lambda: random_tree(20, seed=1)):
            g = builder()
            compressed = compress_degree_one(g)
            assert sum(compressed.multiplicity.values()) == pytest.approx(
                g.number_of_vertices()
            )

    def test_reach_and_parent_recorded(self):
        g = lollipop_graph(4, 3)
        compressed = compress_degree_one(g)
        assert set(compressed.parent) == set(compressed.removed)
        for u in compressed.removed:
            assert compressed.reach[u] >= 1

    def test_original_graph_untouched(self, star6):
        before = star6.number_of_vertices()
        compress_degree_one(star6)
        assert star6.number_of_vertices() == before


class TestBetweennessWithCompression:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: path_graph(7),
            lambda: star_graph(8),
            lambda: lollipop_graph(5, 4),
            lambda: binary_tree(3),
            lambda: random_tree(20, seed=3),
            lambda: barbell_graph(4, 3),
        ],
        ids=["path", "star", "lollipop", "binary-tree", "random-tree", "barbell"],
    )
    def test_matches_plain_brandes(self, builder):
        graph = builder()
        plain = betweenness_centrality(graph)
        compressed = betweenness_with_compression(graph)
        assert set(plain) == set(compressed)
        for v in graph.vertices():
            assert compressed[v] == pytest.approx(plain[v], abs=1e-9)

    def test_scale_free_graph_with_pendants(self):
        # BA graphs with m=1 are trees: the extreme pendant-heavy case.
        graph = barabasi_albert_graph(30, 1, seed=5)
        plain = betweenness_centrality(graph)
        compressed = betweenness_with_compression(graph)
        for v in graph.vertices():
            assert compressed[v] == pytest.approx(plain[v], abs=1e-9)

    def test_decorated_core_graph(self):
        # A cycle with pendant chains hanging off it mixes both code paths.
        graph = Graph()
        for i in range(6):
            graph.add_edge(i, (i + 1) % 6)
        graph.add_edge(0, 10)
        graph.add_edge(10, 11)
        graph.add_edge(3, 20)
        plain = betweenness_centrality(graph)
        compressed = betweenness_with_compression(graph)
        for v in graph.vertices():
            assert compressed[v] == pytest.approx(plain[v], abs=1e-9)

    def test_count_normalization(self, star6):
        compressed = betweenness_with_compression(star6, normalization="count")
        assert compressed[0] == pytest.approx(15.0)
