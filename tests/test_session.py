"""Tests for the warm ``BetweennessSession`` serving layer.

The session's one contract is *bit-identity with the cold per-call API*: for
the same knobs and seed, every warm answer — first query, repeated query,
interleaved with other query kinds, before or after other vertices — equals
the one-shot :mod:`repro.centrality.api` answer exactly.  On top of that the
warm state must actually work (repeat queries stop paying Brandes passes)
and must die with the graph version (mutation invalidates the arena, the
oracles and the payloads).
"""

from __future__ import annotations

import pytest

from repro.centrality import (
    BetweennessSession,
    betweenness_exact,
    betweenness_single,
    relative_betweenness,
)
from repro.errors import ConfigurationError, GraphStructureError
from repro.execution import ExecutionPlan
from repro.execution.shared_cache import shared_memory_available
from repro.graphs import barabasi_albert_graph, barbell_graph
from repro.graphs.csr import np

JOBS_GRID = (1, 2, 4)


@pytest.fixture
def graph():
    return barabasi_albert_graph(40, 2, seed=3)


def _cold_workload(graph, *, backend="auto", batch_size=None, n_jobs=None):
    """The reference answers of the mixed workload, one cold call each."""
    hub = graph.vertices()[0]
    other = graph.vertices()[7]
    kw = dict(backend=backend, batch_size=batch_size, n_jobs=n_jobs)
    return [
        betweenness_single(graph, hub, method="mh", samples=60, seed=11, **kw),
        betweenness_single(graph, hub, method="mh", samples=60, seed=11, **kw),
        relative_betweenness(graph, [hub, other, 3], samples=80, seed=5, **kw),
        betweenness_single(graph, other, method="mh", samples=60, seed=2, **kw),
        betweenness_exact(graph, **kw),
        betweenness_single(graph, hub, method="uniform-source", samples=40, seed=9, **kw),
    ]


def _warm_workload(session):
    """The same mixed workload through one warm session."""
    graph = session.graph
    hub = graph.vertices()[0]
    other = graph.vertices()[7]
    return [
        session.estimate(hub, method="mh", samples=60, seed=11),
        session.estimate(hub, method="mh", samples=60, seed=11),
        session.relative([hub, other, 3], samples=80, seed=5),
        session.estimate(other, method="mh", samples=60, seed=2),
        session.exact(),
        session.estimate(hub, method="uniform-source", samples=40, seed=9),
    ]


def _assert_workloads_identical(warm, cold):
    assert warm[0].estimate == cold[0].estimate
    assert warm[1].estimate == cold[1].estimate
    assert warm[2].ratios == cold[2].ratios
    assert warm[2].relative == cold[2].relative
    assert warm[3].estimate == cold[3].estimate
    assert warm[4] == cold[4]
    assert warm[5].estimate == cold[5].estimate


class TestWarmColdBitIdentity:
    def test_sequential_session_matches_cold_calls(self, graph):
        cold = _cold_workload(graph)
        with BetweennessSession(graph) as session:
            warm = _warm_workload(session)
        _assert_workloads_identical(warm, cold)

    @pytest.mark.parametrize("n_jobs", JOBS_GRID)
    def test_engaged_session_matches_cold_calls_across_jobs(self, graph, n_jobs):
        cold = _cold_workload(graph, backend="auto", batch_size=8, n_jobs=n_jobs)
        plan = ExecutionPlan(backend="auto", batch_size=8, n_jobs=n_jobs)
        with BetweennessSession(graph, plan) as session:
            warm = _warm_workload(session)
        _assert_workloads_identical(warm, cold)

    @pytest.mark.parametrize("n_jobs", (1, 2))
    def test_multichain_session_matches_cold_calls(self, graph, n_jobs):
        hub = graph.vertices()[0]
        cold = betweenness_single(
            graph, hub, method="mh", samples=64, seed=4,
            batch_size=1, n_jobs=n_jobs, n_chains=2,
        )
        cold_rel = relative_betweenness(
            graph, [hub, 3, 7], samples=80, seed=6,
            batch_size=1, n_jobs=n_jobs, n_chains=2,
        )
        with BetweennessSession(graph, ExecutionPlan(n_jobs=n_jobs)) as session:
            warm = session.estimate(hub, method="mh", samples=64, seed=4, n_chains=2)
            again = session.estimate(hub, method="mh", samples=64, seed=4, n_chains=2)
            warm_rel = session.relative([hub, 3, 7], samples=80, seed=6, n_chains=2)
        assert warm.estimate == cold.estimate
        assert again.estimate == cold.estimate
        assert warm_rel.ratios == cold_rel.ratios

    def test_dict_backend_session_matches_cold_calls(self, graph):
        hub = graph.vertices()[0]
        cold = betweenness_single(
            graph, hub, method="mh", samples=50, seed=3,
            backend="dict", batch_size=1, n_jobs=1,
        )
        plan = ExecutionPlan(backend="dict", batch_size=1, n_jobs=1)
        with BetweennessSession(graph, plan) as session:
            warm = session.estimate(hub, method="mh", samples=50, seed=3)
        assert warm.estimate == cold.estimate


@pytest.mark.skipif(
    np is None or not shared_memory_available(),
    reason="warm-cache assertions need numpy and working shared memory",
)
class TestWarmStateActuallyWarm:
    def test_repeat_query_pays_no_brandes_passes(self, graph):
        hub = graph.vertices()[0]
        with BetweennessSession(graph) as session:
            first = session.estimate(hub, method="mh", samples=60, seed=11)
            second = session.estimate(hub, method="mh", samples=60, seed=11)
        assert first.estimate == second.estimate
        assert first.diagnostics["evaluations"] > 0
        assert second.diagnostics["evaluations"] == 0

    def test_multichain_repeat_hits_persistent_arena(self, graph):
        hub = graph.vertices()[0]
        with BetweennessSession(graph, ExecutionPlan(n_jobs=2)) as session:
            first = session.estimate(hub, method="mh", samples=64, seed=4, n_chains=2)
            second = session.estimate(hub, method="mh", samples=64, seed=4, n_chains=2)
            arena = session.stats()["context"]["arena"]
        assert first.estimate == second.estimate
        # Zero *cross-request* redundancy: the repeat request pays nothing.
        # (Within the first request two workers may race on a source — a
        # benign duplicated pass — so published <= first-request passes.)
        assert second.diagnostics["evaluations"] == 0
        assert 0 < arena["published"] <= first.diagnostics["evaluations"]

    def test_payload_installed_once_across_requests(self, graph):
        hub = graph.vertices()[0]
        with BetweennessSession(graph, ExecutionPlan(n_jobs=2)) as session:
            session.estimate(hub, method="mh", samples=64, seed=4, n_chains=2)
            session.estimate(3, method="mh", samples=64, seed=9, n_chains=2)
            stats = session.stats()["context"]
        # Different target vertices, one payload: targets ride the tasks.
        assert stats["payload_installs"] == 1


class TestGraphMutation:
    def test_mutation_invalidates_and_matches_cold_on_new_graph(self, graph):
        hub = graph.vertices()[0]
        with BetweennessSession(graph) as session:
            session.estimate(hub, method="mh", samples=60, seed=11)
            graph.add_edge(hub, graph.vertices()[-1])
            warm = session.estimate(hub, method="mh", samples=60, seed=11)
            warm_exact = session.exact()
        cold = betweenness_single(graph, hub, method="mh", samples=60, seed=11)
        assert warm.estimate == cold.estimate
        assert warm_exact == betweenness_exact(graph)

    @pytest.mark.skipif(
        np is None or not shared_memory_available(),
        reason="arena assertions need numpy and working shared memory",
    )
    def test_mutation_resets_the_arena(self, graph):
        hub = graph.vertices()[0]
        with BetweennessSession(graph) as session:
            session.estimate(hub, method="mh", samples=60, seed=11)
            before = session.stats()["context"]["arena"]
            assert before["published"] > 0
            graph.add_edge(hub, graph.vertices()[-1])
            session.estimate(hub, method="mh", samples=10, seed=1)
            after = session.stats()["context"]["arena"]
        # Fresh arena: only the new request's sources are published.
        assert after["published"] < before["published"]

    def test_mutation_invalidates_identity_installed_payloads(self):
        """Dict-backend exact ships the *graph object itself* to the
        persistent pool; after a mutation the workers must answer from a
        fresh copy, not the stale pickled one their token still names.
        (The graph must span several shards — a single shard runs inline
        and would never exercise the pool.)"""
        big = barabasi_albert_graph(600, 2, seed=3)
        plan = ExecutionPlan(backend="dict", batch_size=1, n_jobs=2)
        with BetweennessSession(big, plan) as session:
            before = session.exact()
            big.add_edge(big.vertices()[0], big.vertices()[-1])
            after = session.exact()
        assert before != after
        assert after == betweenness_exact(
            big, backend="dict", batch_size=1, n_jobs=2
        )

    def test_rebinding_the_graph_attribute_invalidates(self):
        """Replacing session.graph with a different object — even one with
        an equal version stamp — must invalidate like a mutation."""
        g1 = barabasi_albert_graph(40, 2, seed=3)
        g2 = barabasi_albert_graph(40, 2, seed=4)
        assert g1.version == g2.version
        with BetweennessSession(g1) as session:
            session.estimate(0, method="mh", samples=40, seed=1)
            session.graph = g2
            warm = session.estimate(0, method="mh", samples=40, seed=1)
        cold = betweenness_single(g2, 0, method="mh", samples=40, seed=1)
        assert warm.estimate == cold.estimate

    def test_idempotent_edge_upsert_keeps_warm_state(self, graph):
        """Re-adding an existing identical edge is a no-op and must not
        bump the version (tearing down the arena and warm oracles)."""
        u, v = next(iter(graph.edges()))
        with BetweennessSession(graph) as session:
            first = session.estimate(0, method="mh", samples=40, seed=1)
            version = graph.version
            graph.add_edge(u, v)  # same edge, same weight
            assert graph.version == version
            second = session.estimate(0, method="mh", samples=40, seed=1)
        assert first.estimate == second.estimate
        if second.diagnostics["evaluations"] is not None:
            assert second.diagnostics["evaluations"] == 0  # oracle stayed warm

    def test_disconnecting_mutation_is_caught(self):
        graph = barbell_graph(4, 2)
        with BetweennessSession(graph) as session:
            session.estimate(4, method="mh", samples=20, seed=1)
            # Cutting a bridge disconnects the barbell.
            graph.remove_edge(4, 5)
            with pytest.raises(GraphStructureError):
                session.estimate(4, method="mh", samples=20, seed=1)


class TestSessionSurface:
    def test_ranking_int_form(self, graph):
        with BetweennessSession(graph) as session:
            top = session.ranking(3, samples=120, seed=7)
        assert len(top) == 3
        assert all(v in graph for v in top)

    def test_ranking_restricted_matches_relative(self, graph):
        members = [0, 3, 7, 9]
        with BetweennessSession(graph) as session:
            ranked = session.ranking(members, samples=120, seed=7)
            estimate = session.relative(members, samples=120, seed=7)
        assert ranked == estimate.ranking()

    def test_unknown_method_rejected(self, graph):
        with BetweennessSession(graph) as session:
            with pytest.raises(ConfigurationError, match="unknown method"):
                session.estimate(0, method="nope")

    def test_chains_rejected_for_baselines(self, graph):
        with BetweennessSession(graph) as session:
            with pytest.raises(ConfigurationError, match="MCMC methods"):
                session.estimate(0, method="rk", n_chains=2)

    def test_closed_session_raises(self, graph):
        session = BetweennessSession(graph)
        session.close()
        session.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            session.estimate(0)
        with pytest.raises(ConfigurationError, match="closed"):
            with session:
                pass

    def test_stats_counts_queries(self, graph):
        with BetweennessSession(graph) as session:
            session.estimate(0, samples=20, seed=1)
            session.exact([0])
            assert session.stats()["queries"] == 2

    def test_exposed_from_api_module(self):
        from repro.centrality.api import BetweennessSession as FromApi

        assert FromApi is BetweennessSession


class TestMpContextEndToEnd:
    def test_spawn_multichain_matches_inline(self):
        """The mp_context knob end-to-end: a spawn-context pool plus a
        spawn-context arena lock produce the inline run's exact estimate."""
        from repro.mcmc.multichain import MultiChainMHSampler

        graph = barabasi_albert_graph(30, 2, seed=1)
        r = graph.vertices()[0]
        reference = MultiChainMHSampler(n_chains=2, backend="auto").estimate(
            graph, r, 24, seed=5
        )
        spawned = MultiChainMHSampler(
            n_chains=2, n_jobs=2, mp_context="spawn", backend="auto"
        ).estimate(graph, r, 24, seed=5)
        assert spawned.estimate == reference.estimate
