"""Tests for graph serialisation (edge lists, JSON, networkx interop)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, NegativeWeightError
from repro.graphs import Graph, barbell_graph, path_graph
from repro.graphs.csr import np
from repro.graphs.io import (
    format_edge_list,
    from_dict,
    from_networkx,
    parse_edge_list,
    parse_edge_list_csr,
    read_edge_list,
    read_edge_list_csr,
    read_json,
    to_dict,
    to_networkx,
    write_edge_list,
    write_json,
)


class TestEdgeList:
    def test_format_unweighted(self, path5):
        text = format_edge_list(path5)
        lines = text.strip().splitlines()
        assert len(lines) == 4
        assert lines[0].split() == ["0", "1"]

    def test_format_weighted(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, 2.5)
        assert format_edge_list(g).strip() == "0 1 2.5"

    def test_parse_round_trip(self, barbell):
        text = format_edge_list(barbell)
        rebuilt = parse_edge_list(text.splitlines())
        assert rebuilt.number_of_vertices() == barbell.number_of_vertices()
        assert rebuilt.number_of_edges() == barbell.number_of_edges()
        for u, v in barbell.edges():
            assert rebuilt.has_edge(u, v)

    def test_parse_skips_comments_and_blank_lines(self):
        lines = ["# header", "", "0 1", "  ", "1 2"]
        g = parse_edge_list(lines)
        assert g.number_of_edges() == 2

    def test_parse_drops_self_loops(self):
        g = parse_edge_list(["0 0", "0 1"])
        assert g.number_of_edges() == 1

    def test_parse_weighted(self):
        g = parse_edge_list(["0 1 4.0"], weighted=True)
        assert g.edge_weight(0, 1) == 4.0

    def test_parse_weighted_default_weight(self):
        g = parse_edge_list(["0 1"], weighted=True)
        assert g.edge_weight(0, 1) == 1.0

    def test_parse_invalid_line(self):
        with pytest.raises(GraphError):
            parse_edge_list(["justone"])

    def test_parse_invalid_vertex_token(self):
        with pytest.raises(GraphError):
            parse_edge_list(["a b"])  # default vertex_type=int

    def test_parse_invalid_weight_token(self):
        with pytest.raises(GraphError):
            parse_edge_list(["0 1 notaweight"], weighted=True)

    def test_parse_string_vertices(self):
        g = parse_edge_list(["alice bob"], vertex_type=str)
        assert g.has_edge("alice", "bob")

    def test_file_round_trip(self, tmp_path, barbell):
        path = tmp_path / "graph.edges"
        write_edge_list(barbell, path)
        rebuilt = read_edge_list(path)
        assert rebuilt.number_of_edges() == barbell.number_of_edges()

    def test_self_loop_with_malformed_weight_is_skipped(self):
        # Self-loops are dropped *before* the weight token is inspected,
        # so a junk weight on a skipped line must not raise.
        g = parse_edge_list(["1 1 garbage", "0 1 2.0"], weighted=True)
        assert g.number_of_edges() == 1
        assert g.edge_weight(0, 1) == 2.0

    def test_malformed_weight_reports_the_physical_line_number(self):
        # Regression: skipped lines (comments, self-loops) still advance
        # the line counter, so the error names the file's real line.
        lines = ["# header", "0 1", "2 2 junk-on-a-skipped-line", "1 2 bad"]
        with pytest.raises(GraphError, match="line 4"):
            parse_edge_list(lines, weighted=True)
        with pytest.raises(GraphError, match="line 4"):
            parse_edge_list_csr(lines, weighted=True)

    def test_streamed_write_matches_format_edge_list(self, tmp_path, monkeypatch):
        # Force several flush batches and check the bytes are identical to
        # the all-at-once formatter.
        import repro.graphs.io as io_mod

        monkeypatch.setattr(io_mod, "EDGE_LIST_CHUNK", 3)
        g = barbell_graph(5, 3)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        assert path.read_text(encoding="utf-8") == format_edge_list(g)

    def test_streamed_write_empty_graph(self, tmp_path):
        g = Graph()
        g.add_vertex(0)
        path = tmp_path / "empty.edges"
        write_edge_list(g, path)
        assert path.read_text(encoding="utf-8") == format_edge_list(g) == ""


@pytest.mark.skipif(np is None, reason="CSR ingestion requires numpy")
class TestEdgeListCSR:
    """parse_edge_list_csr must match parse_edge_list(...).csr() byte for byte."""

    @staticmethod
    def _assert_csr_identical(streamed, reference):
        assert np.array_equal(streamed.indptr, reference.indptr)
        assert np.array_equal(streamed.indices, reference.indices)
        assert np.array_equal(streamed.weights, reference.weights)
        assert streamed.indptr.dtype == reference.indptr.dtype
        assert streamed.indices.dtype == reference.indices.dtype
        assert streamed.weights.dtype == reference.weights.dtype
        assert streamed.vertices == reference.vertices
        assert streamed.directed == reference.directed
        assert streamed.weighted == reference.weighted

    MESSY = [
        "# comment",
        "",
        "4 2",
        "0 1",
        "3 3",  # self-loop, dropped
        "1 0",  # duplicate of 0-1 (reversed arc already present)
        "2 0",
        "   ",
        "0 1",  # exact duplicate
        "5 4",
        "3 5",
    ]

    def test_undirected_byte_identity(self):
        streamed = parse_edge_list_csr(self.MESSY)
        reference = parse_edge_list(self.MESSY).csr()
        self._assert_csr_identical(streamed, reference)

    def test_directed_byte_identity(self):
        streamed = parse_edge_list_csr(self.MESSY, directed=True)
        reference = parse_edge_list(self.MESSY, directed=True).csr()
        self._assert_csr_identical(streamed, reference)

    def test_weighted_last_duplicate_weight_wins(self):
        lines = ["0 1 2.0", "1 2 3.0", "0 1 5.0", "2 0"]
        streamed = parse_edge_list_csr(lines, weighted=True)
        reference = parse_edge_list(lines, weighted=True).csr()
        self._assert_csr_identical(streamed, reference)
        row = streamed.indices[streamed.indptr[0] : streamed.indptr[1]].tolist()
        weights = streamed.weights[streamed.indptr[0] : streamed.indptr[1]]
        assert weights[row.index(streamed.index_of(1))] == 5.0

    def test_tiny_chunks_are_equivalent(self):
        streamed = parse_edge_list_csr(self.MESSY, chunk_edges=2)
        reference = parse_edge_list(self.MESSY).csr()
        self._assert_csr_identical(streamed, reference)

    def test_string_vertices_first_appearance_order(self):
        lines = ["carol alice", "alice bob", "bob carol"]
        streamed = parse_edge_list_csr(lines, vertex_type=str)
        reference = parse_edge_list(lines, vertex_type=str).csr()
        self._assert_csr_identical(streamed, reference)
        assert streamed.vertices == ("carol", "alice", "bob")

    def test_comments_only_yields_an_empty_graph(self):
        streamed = parse_edge_list_csr(["# nothing", "", "  "])
        assert streamed.number_of_vertices() == 0
        assert streamed.indices.shape == (0,)

    def test_nonpositive_weight_raises_like_the_dict_route(self):
        with pytest.raises(NegativeWeightError):
            parse_edge_list(["0 1 -2.0"], weighted=True)
        with pytest.raises(NegativeWeightError):
            parse_edge_list_csr(["0 1 -2.0"], weighted=True)

    def test_invalid_lines_raise_with_line_numbers(self):
        with pytest.raises(GraphError, match="line 1"):
            parse_edge_list_csr(["justone"])
        with pytest.raises(GraphError, match="line 2"):
            parse_edge_list_csr(["0 1", "a b"])

    def test_file_round_trip_matches_dict_route(self, tmp_path):
        g = barbell_graph(6, 2)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        streamed = read_edge_list_csr(path)
        reference = read_edge_list(path).csr()
        self._assert_csr_identical(streamed, reference)

    def test_weighted_file_round_trip(self, tmp_path):
        g = Graph(weighted=True)
        g.add_edge(0, 1, 2.5)
        g.add_edge(1, 2, 0.25)
        g.add_edge(2, 0, 4.0)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        streamed = read_edge_list_csr(path, weighted=True)
        reference = read_edge_list(path, weighted=True).csr()
        self._assert_csr_identical(streamed, reference)


class TestJson:
    def test_dict_round_trip(self, barbell):
        data = to_dict(barbell)
        rebuilt = from_dict(data)
        assert rebuilt.number_of_vertices() == barbell.number_of_vertices()
        assert rebuilt.number_of_edges() == barbell.number_of_edges()

    def test_dict_preserves_flags(self):
        g = Graph(directed=True, weighted=True)
        g.add_edge(0, 1, 3.0)
        rebuilt = from_dict(to_dict(g))
        assert rebuilt.directed and rebuilt.weighted
        assert rebuilt.edge_weight(0, 1) == 3.0

    def test_from_dict_malformed(self):
        with pytest.raises(GraphError):
            from_dict({"vertices": [1, 2]})

    def test_json_file_round_trip(self, tmp_path, path5):
        path = tmp_path / "graph.json"
        write_json(path5, path)
        rebuilt = read_json(path)
        assert rebuilt.number_of_edges() == 4

    def test_isolated_vertices_survive_round_trip(self):
        g = Graph()
        g.add_vertex(7)
        g.add_edge(0, 1)
        rebuilt = from_dict(to_dict(g))
        assert rebuilt.has_vertex(7)


class TestNetworkxInterop:
    def test_to_networkx(self, barbell):
        nx_graph = to_networkx(barbell)
        assert nx_graph.number_of_nodes() == barbell.number_of_vertices()
        assert nx_graph.number_of_edges() == barbell.number_of_edges()

    def test_from_networkx(self):
        import networkx as nx

        nx_graph = nx.path_graph(4)
        g = from_networkx(nx_graph)
        assert g.number_of_edges() == 3

    def test_round_trip_weighted(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 0.5)
        back = from_networkx(to_networkx(g), weighted=True)
        assert back.edge_weight(1, 2) == 0.5

    def test_from_networkx_drops_self_loops(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        nx_graph.add_edge(0, 1)
        g = from_networkx(nx_graph)
        assert g.number_of_edges() == 1
