"""Tests for graph serialisation (edge lists, JSON, networkx interop)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import Graph, barbell_graph, path_graph
from repro.graphs.io import (
    format_edge_list,
    from_dict,
    from_networkx,
    parse_edge_list,
    read_edge_list,
    read_json,
    to_dict,
    to_networkx,
    write_edge_list,
    write_json,
)


class TestEdgeList:
    def test_format_unweighted(self, path5):
        text = format_edge_list(path5)
        lines = text.strip().splitlines()
        assert len(lines) == 4
        assert lines[0].split() == ["0", "1"]

    def test_format_weighted(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, 2.5)
        assert format_edge_list(g).strip() == "0 1 2.5"

    def test_parse_round_trip(self, barbell):
        text = format_edge_list(barbell)
        rebuilt = parse_edge_list(text.splitlines())
        assert rebuilt.number_of_vertices() == barbell.number_of_vertices()
        assert rebuilt.number_of_edges() == barbell.number_of_edges()
        for u, v in barbell.edges():
            assert rebuilt.has_edge(u, v)

    def test_parse_skips_comments_and_blank_lines(self):
        lines = ["# header", "", "0 1", "  ", "1 2"]
        g = parse_edge_list(lines)
        assert g.number_of_edges() == 2

    def test_parse_drops_self_loops(self):
        g = parse_edge_list(["0 0", "0 1"])
        assert g.number_of_edges() == 1

    def test_parse_weighted(self):
        g = parse_edge_list(["0 1 4.0"], weighted=True)
        assert g.edge_weight(0, 1) == 4.0

    def test_parse_weighted_default_weight(self):
        g = parse_edge_list(["0 1"], weighted=True)
        assert g.edge_weight(0, 1) == 1.0

    def test_parse_invalid_line(self):
        with pytest.raises(GraphError):
            parse_edge_list(["justone"])

    def test_parse_invalid_vertex_token(self):
        with pytest.raises(GraphError):
            parse_edge_list(["a b"])  # default vertex_type=int

    def test_parse_invalid_weight_token(self):
        with pytest.raises(GraphError):
            parse_edge_list(["0 1 notaweight"], weighted=True)

    def test_parse_string_vertices(self):
        g = parse_edge_list(["alice bob"], vertex_type=str)
        assert g.has_edge("alice", "bob")

    def test_file_round_trip(self, tmp_path, barbell):
        path = tmp_path / "graph.edges"
        write_edge_list(barbell, path)
        rebuilt = read_edge_list(path)
        assert rebuilt.number_of_edges() == barbell.number_of_edges()


class TestJson:
    def test_dict_round_trip(self, barbell):
        data = to_dict(barbell)
        rebuilt = from_dict(data)
        assert rebuilt.number_of_vertices() == barbell.number_of_vertices()
        assert rebuilt.number_of_edges() == barbell.number_of_edges()

    def test_dict_preserves_flags(self):
        g = Graph(directed=True, weighted=True)
        g.add_edge(0, 1, 3.0)
        rebuilt = from_dict(to_dict(g))
        assert rebuilt.directed and rebuilt.weighted
        assert rebuilt.edge_weight(0, 1) == 3.0

    def test_from_dict_malformed(self):
        with pytest.raises(GraphError):
            from_dict({"vertices": [1, 2]})

    def test_json_file_round_trip(self, tmp_path, path5):
        path = tmp_path / "graph.json"
        write_json(path5, path)
        rebuilt = read_json(path)
        assert rebuilt.number_of_edges() == 4

    def test_isolated_vertices_survive_round_trip(self):
        g = Graph()
        g.add_vertex(7)
        g.add_edge(0, 1)
        rebuilt = from_dict(to_dict(g))
        assert rebuilt.has_vertex(7)


class TestNetworkxInterop:
    def test_to_networkx(self, barbell):
        nx_graph = to_networkx(barbell)
        assert nx_graph.number_of_nodes() == barbell.number_of_vertices()
        assert nx_graph.number_of_edges() == barbell.number_of_edges()

    def test_from_networkx(self):
        import networkx as nx

        nx_graph = nx.path_graph(4)
        g = from_networkx(nx_graph)
        assert g.number_of_edges() == 3

    def test_round_trip_weighted(self):
        g = Graph(weighted=True)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 0.5)
        back = from_networkx(to_networkx(g), weighted=True)
        assert back.edge_weight(1, 2) == 0.5

    def test_from_networkx_drops_self_loops(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        nx_graph.add_edge(0, 1)
        g = from_networkx(nx_graph)
        assert g.number_of_edges() == 1
