"""Tests for the parallel multi-chain MCMC drivers (:mod:`repro.mcmc.multichain`).

Four promises are checked here:

1. **Legacy identity** — a ``K = 1`` driver reproduces the legacy sequential
   samplers bit for bit (same rng stream, same states, same estimate), for
   all three chain families and with the batch-prefetch engine engaged.
2. **Execution invariance** — the pooled fixed-seed estimate is bit-identical
   across ``n_jobs ∈ {1, 2, 4}`` for every ``n_chains ∈ {1, 4, 8}``, on both
   backends.
3. **Statistical correctness** — pooled estimates land within *analytic*
   error bounds of the exact Brandes values (Hoeffding for the unbiased
   proposal read-out, the paper's Theorem 1 ε for the chain read-out around
   its π-weighted target), and seeded regression values are pinned for both
   backends.
4. **Adaptive mode** — the split-R̂-driven driver stops early when the
   chains agree, falls back to the full budget when they cannot, and never
   changes what a converged run would estimate across ``n_jobs``.
"""

from __future__ import annotations

import math

import pytest

from repro.centrality.api import betweenness_single, relative_betweenness
from repro.errors import ConfigurationError, EdgeNotFoundError
from repro.exact.single_vertex import betweenness_of_vertex
from repro.graphs import barabasi_albert_graph, barbell_graph
from repro.mcmc import (
    DependencyOracle,
    EdgeMHSampler,
    JointSpaceMHSampler,
    MultiChainEdgeSampler,
    MultiChainJointSampler,
    MultiChainMHSampler,
    SingleSpaceMHSampler,
    merge_joint_chains,
    split_budget,
)
from repro.mcmc.bounds import mu_statistics
from repro.shortest_paths.dependencies import all_dependencies_on_target

JOBS_GRID = (1, 2, 4)
CHAINS_GRID = (1, 4, 8)


# ----------------------------------------------------------------------
# Budget splitting
# ----------------------------------------------------------------------


class TestSplitBudget:
    def test_even_split(self):
        assert split_budget(80, 4) == [20, 20, 20, 20]

    def test_remainder_goes_to_leading_chains(self):
        assert split_budget(10, 4) == [3, 3, 2, 2]

    def test_single_chain_keeps_everything(self):
        assert split_budget(7, 1) == [7]

    def test_total_is_preserved(self):
        for total in (1, 5, 97, 256):
            for k in (1, 2, 3, 8):
                if total >= k:
                    assert sum(split_budget(total, k)) == total

    def test_budget_below_chain_count_rejected(self):
        with pytest.raises(ConfigurationError):
            split_budget(3, 4)

    def test_non_positive_chains_rejected(self):
        with pytest.raises(ConfigurationError):
            split_budget(10, 0)


# ----------------------------------------------------------------------
# Legacy identity (K = 1)
# ----------------------------------------------------------------------


class TestSingleChainIdentity:
    """K = 1 output identical to the legacy sequential sampler."""

    @pytest.mark.parametrize("estimator", ["chain", "proposal", "accepted"])
    def test_estimate_bit_identical(self, barbell, estimator):
        legacy = SingleSpaceMHSampler(estimator=estimator).estimate(
            barbell, 5, 80, seed=9
        )
        pooled = MultiChainMHSampler(n_chains=1, estimator=estimator).estimate(
            barbell, 5, 80, seed=9
        )
        assert pooled.estimate == legacy.estimate
        assert pooled.samples == legacy.samples

    def test_chain_states_identical(self, barbell):
        legacy = SingleSpaceMHSampler().run_chain(barbell, 5, 60, seed=4)
        pooled = MultiChainMHSampler(n_chains=1).run_chains(barbell, 5, 60, seed=4)
        assert len(pooled.chains) == 1
        assert pooled.chains[0].states == legacy.states

    def test_identity_survives_the_batch_engine(self, barbell):
        legacy = SingleSpaceMHSampler(batch_size=8).estimate(barbell, 5, 60, seed=21)
        pooled = MultiChainMHSampler(n_chains=1, batch_size=8).estimate(
            barbell, 5, 60, seed=21
        )
        assert pooled.estimate == legacy.estimate

    def test_joint_identity(self, barbell):
        refs = [5, 6, 4]
        legacy = JointSpaceMHSampler().estimate_relative(barbell, refs, 150, seed=7)
        pooled = MultiChainJointSampler(n_chains=1).estimate_relative(
            barbell, refs, 150, seed=7
        )
        assert pooled.relative == legacy.relative
        assert pooled.ratios == legacy.ratios
        assert pooled.sample_counts == legacy.sample_counts
        assert pooled.acceptance_rate == legacy.acceptance_rate
        assert pooled.ranking() == legacy.ranking()

    def test_edge_identity(self, barbell):
        legacy = EdgeMHSampler().estimate(barbell, (5, 6), 60, seed=11)
        pooled = MultiChainEdgeSampler(n_chains=1).estimate(barbell, (5, 6), 60, seed=11)
        assert pooled.estimate == legacy.estimate
        assert pooled.samples == legacy.samples


# ----------------------------------------------------------------------
# Execution invariance
# ----------------------------------------------------------------------


class TestExecutionInvariance:
    """Fixed-seed bit-identity across n_jobs {1,2,4} x n_chains {1,4,8}."""

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_single_vertex_grid(self, backend):
        if backend == "csr":
            pytest.importorskip("numpy")
        graph = barabasi_albert_graph(30, 2, seed=5)
        r = graph.vertices()[6]
        for n_chains in CHAINS_GRID:
            estimates = [
                MultiChainMHSampler(
                    n_chains=n_chains, n_jobs=n_jobs, backend=backend
                ).estimate(graph, r, 64, seed=99).estimate
                for n_jobs in JOBS_GRID
            ]
            assert estimates[0] == estimates[1] == estimates[2], n_chains

    def test_grid_with_batch_prefetch(self):
        pytest.importorskip("numpy")
        graph = barabasi_albert_graph(30, 2, seed=5)
        r = graph.vertices()[6]
        estimates = [
            MultiChainMHSampler(
                n_chains=4, n_jobs=n_jobs, backend="csr", batch_size=8
            ).estimate(graph, r, 64, seed=17).estimate
            for n_jobs in JOBS_GRID
        ]
        assert estimates[0] == estimates[1] == estimates[2]

    def test_joint_grid(self, barbell):
        refs = [5, 6, 4]
        for n_chains in (1, 4):
            results = [
                MultiChainJointSampler(n_chains=n_chains, n_jobs=n_jobs)
                .estimate_relative(barbell, refs, 120, seed=29)
                for n_jobs in JOBS_GRID
            ]
            assert results[0].relative == results[1].relative == results[2].relative
            assert results[0].sample_counts == results[1].sample_counts

    def test_edge_grid(self, barbell):
        for n_chains in (1, 4):
            estimates = [
                MultiChainEdgeSampler(n_chains=n_chains, n_jobs=n_jobs)
                .estimate(barbell, (5, 6), 64, seed=13)
                .estimate
                for n_jobs in JOBS_GRID
            ]
            assert estimates[0] == estimates[1] == estimates[2]

    def test_backends_agree_on_the_pooled_estimate(self):
        """Both backends walk the same chains (identical rng streams), so the
        pooled estimates differ by float accumulation order at most."""
        graph = barabasi_albert_graph(30, 2, seed=5)
        r = graph.vertices()[6]
        dict_est = MultiChainMHSampler(n_chains=4, backend="dict").estimate(
            graph, r, 80, seed=23
        )
        csr_est = MultiChainMHSampler(n_chains=4, backend="csr").estimate(
            graph, r, 80, seed=23
        )
        assert dict_est.estimate == pytest.approx(csr_est.estimate, rel=1e-9)

    def test_api_threading_matches_direct_driver(self, barbell):
        api = betweenness_single(barbell, 5, method="mh", samples=60, seed=3, n_chains=4)
        direct = MultiChainMHSampler(n_chains=4).estimate(barbell, 5, 60, seed=3)
        assert api.estimate == direct.estimate
        assert api.diagnostics["n_chains"] == 4


# ----------------------------------------------------------------------
# Diagnostics surfaced on the estimate objects
# ----------------------------------------------------------------------


class TestDiagnosticsSurface:
    def test_single_vertex_diagnostics(self, barbell):
        est = MultiChainMHSampler(n_chains=4).estimate(barbell, 5, 200, seed=3)
        diag = est.diagnostics
        assert diag["n_chains"] == 4
        assert len(diag["acceptance_rates"]) == 4
        assert all(0.0 <= rate <= 1.0 for rate in diag["acceptance_rates"])
        assert diag["rhat"] > 0.0
        assert diag["ess"] > 0.0
        assert diag["evaluations"] > 0
        assert diag["converged"] is None  # no rhat target -> fixed-length run
        assert diag["multichain"].pooled_estimate() == est.estimate

    def test_relative_diagnostics(self, barbell):
        est = relative_betweenness(barbell, [5, 6, 4], samples=120, seed=5, n_chains=4)
        assert est.diagnostics["n_chains"] == 4
        assert len(est.diagnostics["acceptance_rates"]) == 4
        assert est.diagnostics["rhat"] > 0.0
        assert sum(est.sample_counts.values()) == sum(
            len(c.kept_states()) for c in [est.chain]
        )

    def test_joint_merged_evaluations_are_per_chain_deltas(self, barbell):
        """Chains sharing a per-process oracle must each be billed their own
        Brandes passes, so the merged total equals the driver's true count
        instead of summing cumulative shared-counter snapshots."""
        est = MultiChainJointSampler(n_chains=4, n_jobs=1).estimate_relative(
            barbell, [5, 6, 4], 160, seed=5
        )
        assert est.chain.evaluations == est.diagnostics["evaluations"]

    def test_edge_diagnostics(self, barbell):
        est = MultiChainEdgeSampler(n_chains=4).estimate(barbell, (5, 6), 80, seed=7)
        assert est.diagnostics["n_chains"] == 4
        assert est.diagnostics["rhat"] > 0.0
        assert est.diagnostics["ess"] > 0.0

    def test_per_chain_estimates_average_to_pooled_for_equal_lengths(self, barbell):
        result = MultiChainMHSampler(n_chains=4).run_chains(barbell, 5, 80, seed=3)
        per_chain = result.per_chain_estimates()
        assert result.pooled_estimate() == pytest.approx(
            sum(per_chain) / len(per_chain)
        )


# ----------------------------------------------------------------------
# Adaptive mode
# ----------------------------------------------------------------------


class TestAdaptiveMode:
    def test_early_stop_spends_less_than_the_budget(self, barbell):
        est = MultiChainMHSampler(
            n_chains=4, rhat_target=1.5, check_interval=16
        ).estimate(barbell, 5, 4000, seed=3)
        assert est.diagnostics["converged"] is True
        assert est.samples < 4000
        assert est.diagnostics["burn_in"] > 0  # adopted warm-up

    def test_unreachable_target_runs_the_full_budget(self, barbell):
        # Chains cannot pass a 1.000001 target within a tiny budget.
        est = MultiChainMHSampler(
            n_chains=4, rhat_target=1.000001, check_interval=8
        ).estimate(barbell, 5, 32, seed=3)
        assert est.diagnostics["converged"] is False
        assert est.samples == 32

    def test_adaptive_estimate_invariant_across_n_jobs(self, barbell):
        estimates = [
            MultiChainMHSampler(
                n_chains=4, rhat_target=1.5, check_interval=16, n_jobs=n_jobs
            ).estimate(barbell, 5, 800, seed=3)
            for n_jobs in JOBS_GRID
        ]
        assert (
            estimates[0].estimate == estimates[1].estimate == estimates[2].estimate
        )
        assert estimates[0].samples == estimates[1].samples == estimates[2].samples

    def test_adaptive_mode_tolerates_a_configured_burn_in(self, barbell):
        """A base burn_in larger than check_interval must not trip the
        per-segment chain-length validation; it applies only as the
        not-converged fallback.  Slow-mixing random-walk chains cannot pass
        the near-1 target, so the fallback genuinely fires."""
        est = MultiChainMHSampler(
            SingleSpaceMHSampler(proposal="random-walk", burn_in=100),
            n_chains=4,
            rhat_target=1.000001,
            check_interval=16,
        ).estimate(barbell, 5, 800, seed=3)
        assert est.diagnostics["converged"] is False
        assert est.diagnostics["burn_in"] == 100
        converged = MultiChainMHSampler(
            SingleSpaceMHSampler(burn_in=100),
            n_chains=4,
            rhat_target=1.5,
            check_interval=16,
        ).estimate(barbell, 5, 800, seed=3)
        assert converged.diagnostics["converged"] is True
        assert converged.diagnostics["burn_in"] != 100  # adopted half-burn

    def test_adaptive_rejects_burn_in_beyond_the_budget(self, barbell):
        with pytest.raises(ConfigurationError):
            MultiChainMHSampler(
                SingleSpaceMHSampler(burn_in=100), n_chains=4, rhat_target=1.2
            ).estimate(barbell, 5, 80, seed=3)

    def test_segmented_chains_are_contiguous(self, barbell):
        result = MultiChainMHSampler(
            n_chains=2, rhat_target=1.000001, check_interval=10
        ).run_chains(barbell, 5, 64, seed=5)
        for chain in result.chains:
            iterations = [s.iteration for s in chain.states]
            assert iterations == list(range(len(chain.states)))

    def test_extend_chain_requires_recorded_states(self, barbell):
        sampler = SingleSpaceMHSampler(record_states=False)
        chain = sampler.run_chain(barbell, 5, 10, seed=1)
        with pytest.raises(ConfigurationError):
            sampler.extend_chain(barbell, 5, chain, 10, rng=1)

    def test_extend_chain_is_oracle_independent(self, barbell):
        """The continuation must not depend on which oracle instance (or its
        cache history) serves the dependency scores."""
        sampler = SingleSpaceMHSampler()
        first = sampler.run_chain(barbell, 5, 20, seed=6)
        import random

        warm = DependencyOracle(barbell)
        warm.prefetch(barbell.vertices())
        extended_cold = sampler.extend_chain(barbell, 5, first, 20, rng=random.Random(8))
        extended_warm = sampler.extend_chain(
            barbell, 5, first, 20, rng=random.Random(8), oracle=warm
        )
        assert extended_cold.states == extended_warm.states
        assert len(extended_cold.states) == len(first.states) + 20
        assert first.states == extended_cold.states[: len(first.states)], (
            "the input chain must not be mutated"
        )

    def test_extend_chain_accumulates_evaluations(self, barbell):
        """The extended record bills the original run plus this segment's
        passes only — never another chain's work on a shared oracle."""
        sampler = SingleSpaceMHSampler()
        first = sampler.run_chain(barbell, 5, 20, seed=6)
        shared = DependencyOracle(barbell)
        shared.prefetch(barbell.vertices())  # foreign work: must not be billed
        import random

        extended = sampler.extend_chain(
            barbell, 5, first, 20, rng=random.Random(8), oracle=shared
        )
        assert extended.evaluations == first.evaluations  # all segment hits cached
        fresh = sampler.extend_chain(barbell, 5, first, 20, rng=random.Random(8))
        assert fresh.evaluations >= first.evaluations


# ----------------------------------------------------------------------
# Statistical verification against exact Brandes values
# ----------------------------------------------------------------------


class TestStatisticalVerification:
    """Pooled estimates vs exact values, within analytic error bounds."""

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    @pytest.mark.parametrize("n_chains", [1, 4])
    def test_unbiased_readout_within_hoeffding_bound(self, barbell, backend, n_chains):
        """The 'proposal' read-out averages i.i.d. uniform dependency draws, so
        Hoeffding's inequality bounds its deviation from the exact value:
        |est - BC(r)| <= b * sqrt(ln(2/delta) / (2 N)) with probability
        1 - delta, where b = max_v delta_v(r) / (n - 1) is the range of one
        draw.  delta = 1e-6 makes a fixed-seed violation vanishingly
        unlikely; a failure here means the estimator is wrong, not unlucky."""
        r = 5
        total = 400
        est = MultiChainMHSampler(
            n_chains=n_chains, estimator="proposal", backend=backend
        ).estimate(barbell, r, total, seed=2019)
        exact = betweenness_of_vertex(barbell, r)
        stats = mu_statistics(barbell, r)
        n = barbell.number_of_vertices()
        draws = total + n_chains  # every chain's initial state is a draw too
        bound = (stats.max_dependency / (n - 1)) * math.sqrt(
            math.log(2.0 / 1e-6) / (2.0 * draws)
        )
        assert abs(est.estimate - exact) <= bound

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_chain_readout_within_theorem1_bound_of_its_target(self, barbell, backend):
        """The paper's Equation 7 read-out concentrates on the pi-weighted mean
        of the dependency scores (the reproduction finding documented in
        repro.mcmc.single); Theorem 1's epsilon at delta = 1e-3 bounds the
        pooled deviation from that target."""
        from repro.mcmc.bounds import epsilon_for_samples

        r = 5
        total = 600
        est = MultiChainMHSampler(n_chains=4, backend=backend).estimate(
            barbell, r, total, seed=2019
        )
        deltas = all_dependencies_on_target(barbell, r)
        n = barbell.number_of_vertices()
        pi_mean = sum(d * d for d in deltas.values()) / (
            sum(deltas.values()) * (n - 1)
        )
        epsilon = epsilon_for_samples(total, 1e-3, mu_statistics(barbell, r).mu)
        assert abs(est.estimate - pi_mean) <= epsilon

    def test_joint_ratios_track_exact_ratios(self, barbell):
        """Pooled Equation 22 ratio estimates agree with the exact betweenness
        ratios within a generous multiplicative margin at this chain length."""
        est = MultiChainJointSampler(n_chains=4).estimate_relative(
            barbell, [5, 6, 4], 2000, seed=2019
        )
        exact = {v: betweenness_of_vertex(barbell, v) for v in (5, 6, 4)}
        for (ri, rj), value in est.ratios.items():
            true_ratio = exact[ri] / exact[rj]
            assert value == pytest.approx(true_ratio, rel=0.35), (ri, rj)

    # Seeded regression pins: the exact pooled estimates at seed 2019 on the
    # barbell fixture, one per backend.  These fail loudly if the rng
    # discipline, the chain mechanics or the ordered reduce ever drift.
    REGRESSION = {
        "dict": 0.5057932263814616,
        "csr": 0.5057932263814616,
    }

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_seeded_regression_values(self, barbell, backend):
        if backend == "csr":
            pytest.importorskip("numpy")
        est = MultiChainMHSampler(n_chains=4, backend=backend).estimate(
            barbell, 5, 200, seed=2019
        )
        assert est.estimate == pytest.approx(self.REGRESSION[backend], rel=1e-9)


# ----------------------------------------------------------------------
# Validation and merge helpers
# ----------------------------------------------------------------------


class TestValidation:
    def test_rejects_bad_n_chains(self):
        with pytest.raises(ConfigurationError):
            MultiChainMHSampler(n_chains=0)

    def test_rejects_bad_rhat_target(self):
        with pytest.raises(ConfigurationError):
            MultiChainMHSampler(rhat_target=1.0)

    def test_rejects_bad_check_interval(self):
        with pytest.raises(ConfigurationError):
            MultiChainMHSampler(check_interval=0)

    def test_rejects_base_plus_kwargs(self):
        with pytest.raises(ConfigurationError):
            MultiChainMHSampler(SingleSpaceMHSampler(), proposal="degree")

    def test_rejects_lean_base_sampler(self):
        with pytest.raises(ConfigurationError):
            MultiChainMHSampler(SingleSpaceMHSampler(record_states=False))

    def test_rejects_wrong_base_type(self):
        with pytest.raises(ConfigurationError):
            MultiChainMHSampler(JointSpaceMHSampler())

    def test_rejects_budget_below_chain_count(self, barbell):
        with pytest.raises(ConfigurationError):
            MultiChainMHSampler(n_chains=8).estimate(barbell, 5, 4, seed=1)

    def test_api_rejects_chains_for_baseline_methods(self, barbell):
        with pytest.raises(ConfigurationError):
            betweenness_single(
                barbell, 5, method="uniform-source", samples=20, n_chains=4
            )

    def test_edge_driver_validates_the_edge(self, barbell):
        with pytest.raises(EdgeNotFoundError):
            MultiChainEdgeSampler(n_chains=2).estimate(barbell, (0, 11), 20, seed=1)

    def test_merge_rejects_mismatched_reference_sets(self, barbell):
        a = JointSpaceMHSampler().run_chain(barbell, [5, 6], 20, seed=1)
        b = JointSpaceMHSampler().run_chain(barbell, [5, 4], 20, seed=1)
        with pytest.raises(ConfigurationError):
            merge_joint_chains([a, b])
        with pytest.raises(ConfigurationError):
            merge_joint_chains([])

    def test_merge_applies_per_chain_burn_in(self, barbell):
        sampler = JointSpaceMHSampler(burn_in=5)
        chains = [sampler.run_chain(barbell, [5, 6], 20, seed=s) for s in (1, 2)]
        merged = merge_joint_chains(chains)
        assert len(merged.states) == sum(len(c.kept_states()) for c in chains)
        assert merged.burn_in == 0
