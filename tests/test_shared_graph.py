"""Tests for the zero-copy shared-memory CSR graph snapshots.

Four layers of promises:

1. **Snapshot protocol** — :class:`repro.graphs.shared.SharedCSRGraph` packs
   a CSR snapshot into one segment whose attached views are byte-equal and
   read-only, pickles down to ``(segment name, header)``, re-attaches in the
   unpickling process, and answers the whole label API (identity fast path
   and pickled label table alike) exactly like the plain snapshot.
2. **Registry** — :func:`repro.graphs.shared.ensure_shared_graph` hands back
   one persistent snapshot per ``(graph, version)``; mutation destroys the
   stale segment, and an explicit discard does too.
3. **Runtime integration** — :meth:`ExecutionContext.shared_graph` keeps one
   version-stamped segment per context, invalidates it alongside the
   dependency arena on mutation, and destroys it on close (no leaked
   segments after a session exits).
4. **Estimator parity** — every planned estimator produces bit-identical
   results with ``shared_graph=True`` vs the pickled-shipping default, for
   any ``n_jobs`` at a fixed seed; the dict backend and unsupported
   platforms fall back gracefully.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError, VertexNotFoundError
from repro.execution import (
    ExecutionContext,
    ExecutionPlan,
    graph_snapshot,
    plan_snapshot,
    resolve_plan,
    resolve_shared_graph,
)
from repro.graphs import Graph, barabasi_albert_graph
from repro.graphs.csr import np
from repro.graphs.shared import (
    SharedCSRGraph,
    _REGISTRY,
    create_shared_graph,
    discard_shared_graph,
    ensure_shared_graph,
    shared_graph_available,
)
from repro.mcmc.multichain import MultiChainMHSampler
from repro.samplers.uniform_source import UniformSourceSampler

pytestmark = pytest.mark.skipif(
    np is None or not shared_graph_available(),
    reason="shared graph snapshots require numpy and working shared memory",
)


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


@pytest.fixture
def graph():
    return barabasi_albert_graph(30, 2, seed=5)


@pytest.fixture
def labeled_graph():
    g = Graph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    g.add_edge("c", "d")
    return g


# ----------------------------------------------------------------------
# Snapshot protocol
# ----------------------------------------------------------------------


def test_shared_snapshot_arrays_byte_equal_and_read_only(graph):
    csr = graph.csr()
    shared = SharedCSRGraph.from_csr(csr, version=graph.version)
    try:
        assert np.array_equal(shared.indptr, csr.indptr)
        assert np.array_equal(shared.indices, csr.indices)
        assert np.array_equal(shared.weights, csr.weights)
        assert shared.directed == csr.directed
        assert shared.weighted == csr.weighted
        assert shared.number_of_vertices() == csr.number_of_vertices()
        assert len(shared) == len(csr)
        for view in (shared.indptr, shared.indices, shared.weights):
            assert not view.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            shared.indices[0] = 99
    finally:
        shared.destroy()


def test_shared_snapshot_identity_fast_path_stores_no_labels(graph):
    shared = SharedCSRGraph.from_csr(graph.csr(), version=graph.version)
    try:
        assert shared._header["identity"] is True
        assert shared._header["labels_nbytes"] == 0
        # The label API answers arithmetically, without materialising.
        assert shared.vertex_at(3) == 3
        assert shared.vertex_at(-1) == shared.number_of_vertices() - 1
        with pytest.raises(IndexError):
            shared.vertex_at(shared.number_of_vertices())
        assert shared.index_of(7) == 7
        with pytest.raises(VertexNotFoundError):
            shared.index_of(shared.number_of_vertices())
        with pytest.raises(VertexNotFoundError):
            shared.index_of(-1)
        assert shared.find_index(2) == 2
        assert shared.find_index(10**6) is None
        assert shared.vertices == graph.csr().vertices
    finally:
        shared.destroy()


def test_shared_snapshot_non_identity_labels_round_trip(labeled_graph):
    csr = labeled_graph.csr()
    shared = SharedCSRGraph.from_csr(csr, version=labeled_graph.version)
    try:
        assert shared._header["identity"] is False
        assert shared._header["labels_nbytes"] > 0
        assert shared.vertices == csr.vertices
        for v in csr.vertices:
            assert shared.index_of(v) == csr.index_of(v)
        assert shared.vertex_at(1) == csr.vertex_at(1)
        with pytest.raises(VertexNotFoundError):
            shared.index_of("zzz")
        assert shared.find_index("zzz") is None
        values = np.arange(csr.number_of_vertices(), dtype=np.float64)
        assert shared.array_to_vertex_map(values) == csr.array_to_vertex_map(values)
    finally:
        shared.destroy()


def test_shared_snapshot_array_to_vertex_map_identity(graph):
    csr = graph.csr()
    shared = SharedCSRGraph.from_csr(csr, version=graph.version)
    try:
        values = np.linspace(0.0, 1.0, csr.number_of_vertices())
        assert shared.array_to_vertex_map(values) == csr.array_to_vertex_map(values)
    finally:
        shared.destroy()


def test_shared_snapshot_pickles_to_a_handle_not_arrays(graph):
    csr = graph.csr()
    shared = SharedCSRGraph.from_csr(csr, version=graph.version)
    try:
        blob = pickle.dumps(shared)
        # The point of the design: the pickle is a header, not O(m) arrays.
        assert len(blob) < csr.indices.nbytes
        attached = pickle.loads(blob)
        try:
            assert isinstance(attached, SharedCSRGraph)
            assert attached.owner is False and shared.owner is True
            assert attached.segment_name == shared.segment_name
            assert attached.version == graph.version
            assert np.array_equal(attached.indptr, csr.indptr)
            assert np.array_equal(attached.indices, csr.indices)
            assert np.array_equal(attached.weights, csr.weights)
            # A non-owner close releases the mapping but keeps the segment.
            attached.close()
            assert _segment_exists(shared.segment_name)
        finally:
            attached.close()
    finally:
        shared.destroy()
    assert not _segment_exists(shared.segment_name)


def test_shared_snapshot_kernels_bit_identical(graph):
    from repro.shortest_paths.dependencies import csr_source_dependencies

    csr = graph.csr()
    shared = SharedCSRGraph.from_csr(csr, version=graph.version)
    try:
        for s in range(0, csr.number_of_vertices(), 5):
            assert np.array_equal(
                csr_source_dependencies(shared, s), csr_source_dependencies(csr, s)
            )
    finally:
        shared.destroy()


def test_create_shared_graph_warns_and_falls_back(monkeypatch, graph):
    import repro.graphs.shared as shared_mod

    monkeypatch.setattr(shared_mod, "_shared_memory", None)
    with pytest.warns(RuntimeWarning, match="falling back to pickled"):
        assert create_shared_graph(graph.csr()) is None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_ensure_shared_graph_is_stable_per_version(graph):
    first = ensure_shared_graph(graph)
    second = ensure_shared_graph(graph)
    try:
        assert first is second
        assert first.version == graph.version
    finally:
        discard_shared_graph(graph)
    assert not _segment_exists(first.segment_name)
    assert id(graph) not in _REGISTRY


def test_ensure_shared_graph_mutation_destroys_the_stale_segment(graph):
    stale = ensure_shared_graph(graph)
    stale_name = stale.segment_name
    graph.add_edge(0, graph.number_of_vertices())  # bumps graph.version
    fresh = ensure_shared_graph(graph)
    try:
        assert fresh is not stale
        assert fresh.version == graph.version
        assert not _segment_exists(stale_name), (
            "a mutation must destroy the stale segment, exactly like the "
            "dependency arena"
        )
        assert np.array_equal(fresh.indptr, graph.csr().indptr)
    finally:
        discard_shared_graph(graph)


def test_ensure_shared_graph_unavailable_warns_and_returns_none(monkeypatch, graph):
    import repro.graphs.shared as shared_mod

    monkeypatch.setattr(shared_mod, "shared_graph_available", lambda: False)
    with pytest.warns(RuntimeWarning, match="falling back to pickled"):
        assert shared_mod.ensure_shared_graph(graph) is None


# ----------------------------------------------------------------------
# Plan / env threading
# ----------------------------------------------------------------------


def test_resolve_shared_graph_explicit_wins_over_env(monkeypatch):
    assert resolve_shared_graph(True) is True
    assert resolve_shared_graph(False) is False
    monkeypatch.delenv("REPRO_SHARED_GRAPH", raising=False)
    assert resolve_shared_graph(None) is False
    monkeypatch.setenv("REPRO_SHARED_GRAPH", "1")
    assert resolve_shared_graph(None) is True
    assert resolve_shared_graph(False) is False
    monkeypatch.setenv("REPRO_SHARED_GRAPH", "maybe")
    with pytest.raises(ConfigurationError):
        resolve_shared_graph(None)


def test_shared_graph_env_never_engages_the_engine(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    monkeypatch.setenv("REPRO_SHARED_GRAPH", "1")
    assert resolve_plan(None) is None
    plan = resolve_plan(None, n_jobs=2)
    assert plan is not None and plan.shared_graph is True


def test_plan_validates_the_shared_graph_field():
    with pytest.raises(ConfigurationError):
        ExecutionPlan(shared_graph="yes")
    assert ExecutionPlan(shared_graph=True).shared_graph is True


def test_graph_snapshot_helper_routes_by_knob(graph):
    # Knob off: the plain cached snapshot, so interned keys stay stable.
    assert graph_snapshot(graph) is graph.csr()
    # Knob on, no runtime: the registry's persistent shared snapshot.
    shared = graph_snapshot(graph, shared_graph=True)
    try:
        assert isinstance(shared, SharedCSRGraph)
        assert graph_snapshot(graph, shared_graph=True) is shared
    finally:
        discard_shared_graph(graph)


def test_graph_snapshot_helper_falls_back_to_plain_csr(monkeypatch, graph):
    import repro.graphs.shared as shared_mod

    monkeypatch.setattr(shared_mod, "shared_graph_available", lambda: False)
    with pytest.warns(RuntimeWarning, match="falling back to pickled"):
        snapshot = graph_snapshot(graph, shared_graph=True)
    assert snapshot is graph.csr()


def test_plan_snapshot_reads_the_plan(graph):
    assert plan_snapshot(graph, None) is graph.csr()
    plan = ExecutionPlan(backend="csr", n_jobs=2)
    assert plan_snapshot(graph, plan) is graph.csr()
    plan = ExecutionPlan(backend="csr", n_jobs=2, shared_graph=True)
    shared = plan_snapshot(graph, plan)
    try:
        assert isinstance(shared, SharedCSRGraph)
    finally:
        discard_shared_graph(graph)


# ----------------------------------------------------------------------
# Runtime integration
# ----------------------------------------------------------------------


def test_context_shared_graph_stable_and_destroyed_on_close(graph):
    ctx = ExecutionContext()
    shared = ctx.shared_graph(graph)
    assert isinstance(shared, SharedCSRGraph)
    assert ctx.shared_graph(graph) is shared
    assert ctx.stats()["shared_graph"] == shared.segment_name
    name = shared.segment_name
    ctx.close()
    assert not _segment_exists(name), "close() must unlink the segment (no leak)"


def test_context_shared_graph_invalidated_by_mutation(graph):
    with ExecutionContext() as ctx:
        stale = ctx.shared_graph(graph)
        stale_name = stale.segment_name
        graph.add_edge(0, graph.number_of_vertices())
        fresh = ctx.shared_graph(graph)
        assert fresh is not stale
        assert not _segment_exists(stale_name), (
            "refresh must destroy the stale segment alongside the arena"
        )
        assert fresh.version == graph.version
        name = fresh.segment_name
    assert not _segment_exists(name)


def test_session_exit_leaves_no_segment(graph):
    from repro.centrality.session import BetweennessSession

    plan = ExecutionPlan(backend="csr", batch_size=4, n_jobs=2, shared_graph=True)
    with BetweennessSession(graph, plan) as session:
        warm = session.estimate(graph.vertices()[0], method="mh", samples=32, seed=3)
        name = session.context.stats()["shared_graph"]
    cold = MultiChainMHSampler(
        n_chains=1, backend="csr", batch_size=4
    ).estimate(graph, graph.vertices()[0], 32, seed=3)
    assert warm.estimate == cold.estimate
    if name is not None:
        assert not _segment_exists(name)


# ----------------------------------------------------------------------
# Estimator parity
# ----------------------------------------------------------------------


def test_sampler_estimates_bit_identical_shared_vs_pickled(graph):
    reference = UniformSourceSampler(backend="csr", batch_size=8).estimate_all(
        graph, 40, seed=17
    )
    for n_jobs in (1, 2):
        sampler = UniformSourceSampler(backend="csr", batch_size=8, n_jobs=n_jobs)
        sampler.shared_graph = True
        shared = sampler.estimate_all(graph, 40, seed=17)
        assert shared.estimates == reference.estimates, n_jobs
    discard_shared_graph(graph)


def test_single_vertex_estimates_bit_identical_shared_vs_pickled(graph):
    r = graph.vertices()[0]
    reference = UniformSourceSampler(backend="csr", batch_size=8, n_jobs=1).estimate(
        graph, r, 40, seed=23
    )
    sampler = UniformSourceSampler(backend="csr", batch_size=8, n_jobs=2)
    sampler.shared_graph = True
    shared = sampler.estimate(graph, r, 40, seed=23)
    assert shared.estimate == reference.estimate
    discard_shared_graph(graph)


def test_multichain_pooled_estimate_bit_identical_shared_vs_pickled(graph):
    r = graph.vertices()[0]
    reference = MultiChainMHSampler(
        n_chains=4, backend="csr", batch_size=8
    ).estimate(graph, r, 48, seed=11)
    for n_jobs in (1, 2):
        shared = MultiChainMHSampler(
            n_chains=4,
            n_jobs=n_jobs,
            backend="csr",
            batch_size=8,
            shared_graph=True,
        ).estimate(graph, r, 48, seed=11)
        assert shared.estimate == reference.estimate, n_jobs
    discard_shared_graph(graph)


def test_multichain_dict_backend_ships_no_snapshot(graph):
    r = graph.vertices()[0]
    reference = MultiChainMHSampler(n_chains=2, backend="dict").estimate(
        graph, r, 32, seed=1
    )
    sampler = MultiChainMHSampler(
        n_chains=2, n_jobs=2, backend="dict", shared_graph=True
    )
    assert sampler._graph_snapshot(graph) is None
    shared = sampler.estimate(graph, r, 32, seed=1)
    assert shared.estimate == reference.estimate


def test_multichain_validates_the_shared_graph_knob():
    with pytest.raises(ConfigurationError):
        MultiChainMHSampler(n_chains=2, shared_graph="yes")


def test_exact_brandes_bit_identical_shared_vs_pickled(graph):
    from repro.exact.brandes import betweenness_centrality

    # The engine may re-associate float sums relative to the sequential
    # path (documented ulp-level difference), so the bit-identity contract
    # is shared vs pickled shipping *at the same plan*.
    for n_jobs in (1, 2):
        pickled = betweenness_centrality(
            graph,
            backend="csr",
            plan=ExecutionPlan(backend="csr", batch_size=8, n_jobs=n_jobs),
        )
        shared = betweenness_centrality(
            graph,
            backend="csr",
            plan=ExecutionPlan(
                backend="csr", batch_size=8, n_jobs=n_jobs, shared_graph=True
            ),
        )
        assert shared == pickled, n_jobs
    discard_shared_graph(graph)
