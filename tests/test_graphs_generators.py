"""Tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    barabasi_albert_graph,
    barbell_graph,
    binary_tree,
    complete_graph,
    connected_caveman_graph,
    cycle_graph,
    double_star_graph,
    empty_graph,
    erdos_renyi_graph,
    gnm_random_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    planted_partition_graph,
    random_geometric_graph,
    random_tree,
    star_graph,
    watts_strogatz_graph,
    wheel_graph,
)
from repro.graphs.components import is_connected


class TestDeterministicGenerators:
    def test_empty_graph(self):
        g = empty_graph(4)
        assert g.number_of_vertices() == 4
        assert g.number_of_edges() == 0

    def test_empty_graph_negative(self):
        with pytest.raises(ConfigurationError):
            empty_graph(-1)

    def test_path_graph(self):
        g = path_graph(6)
        assert g.number_of_edges() == 5
        assert g.degree(0) == 1 and g.degree(3) == 2

    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert g.number_of_edges() == 5
        assert all(g.degree(v) == 2 for v in g)

    def test_cycle_requires_three_vertices(self):
        with pytest.raises(ConfigurationError):
            cycle_graph(2)

    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.number_of_edges() == 15
        assert all(g.degree(v) == 5 for v in g)

    def test_star_graph(self):
        g = star_graph(8)
        assert g.number_of_vertices() == 9
        assert g.degree(0) == 8
        assert all(g.degree(v) == 1 for v in range(1, 9))

    def test_double_star(self):
        g = double_star_graph(3, 4)
        assert g.number_of_vertices() == 2 + 3 + 4
        assert g.degree(0) == 4  # 3 leaves + the bridge
        assert g.degree(1) == 5

    def test_wheel_graph(self):
        g = wheel_graph(6)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 3 for v in range(1, 7))

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.number_of_vertices() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4
        assert is_connected(g)

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.number_of_vertices() == 15
        assert g.number_of_edges() == 14
        assert g.degree(0) == 2

    def test_binary_tree_depth_zero(self):
        g = binary_tree(0)
        assert g.number_of_vertices() == 1

    def test_barbell_structure(self):
        g = barbell_graph(4, 2)
        assert g.number_of_vertices() == 4 + 2 + 4
        # two K4 cliques (6 edges each) + 3 bridge edges
        assert g.number_of_edges() == 6 + 6 + 3
        assert is_connected(g)

    def test_barbell_without_bridge(self):
        g = barbell_graph(3, 0)
        assert g.number_of_vertices() == 6
        assert g.has_edge(2, 3)

    def test_lollipop(self):
        g = lollipop_graph(4, 3)
        assert g.number_of_vertices() == 7
        assert g.number_of_edges() == 6 + 3
        assert g.degree(6) == 1

    def test_caveman_connected(self):
        g = connected_caveman_graph(4, 5)
        assert g.number_of_vertices() == 20
        assert is_connected(g)


class TestRandomGenerators:
    def test_erdos_renyi_reproducible(self):
        a = erdos_renyi_graph(50, 0.1, seed=3)
        b = erdos_renyi_graph(50, 0.1, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi_graph(10, 0.0, seed=1).number_of_edges() == 0
        assert erdos_renyi_graph(6, 1.0, seed=1).number_of_edges() == 15

    def test_erdos_renyi_invalid_p(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_graph(10, 1.5)

    def test_gnm_exact_edge_count(self):
        g = gnm_random_graph(20, 30, seed=5)
        assert g.number_of_vertices() == 20
        assert g.number_of_edges() == 30

    def test_gnm_complete(self):
        g = gnm_random_graph(5, 10, seed=5)
        assert g.number_of_edges() == 10

    def test_gnm_too_many_edges(self):
        with pytest.raises(ConfigurationError):
            gnm_random_graph(5, 11)

    def test_barabasi_albert_connected_and_sized(self):
        g = barabasi_albert_graph(40, 2, seed=9)
        assert g.number_of_vertices() == 40
        assert is_connected(g)
        # each of the n - m - 1 newcomers adds exactly m edges
        assert g.number_of_edges() == 2 + (40 - 3) * 2

    def test_barabasi_albert_validation(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(5, 5)

    def test_watts_strogatz_degree_preserved_without_rewiring(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=1)
        assert all(g.degree(v) == 4 for v in g)

    def test_watts_strogatz_rewiring_keeps_edge_count(self):
        g = watts_strogatz_graph(30, 4, 0.5, seed=2)
        assert g.number_of_edges() == 30 * 2

    def test_watts_strogatz_validation(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 3, 0.1)  # odd k
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 12, 0.1)  # k >= n

    def test_planted_partition_sizes(self):
        g = planted_partition_graph(3, 10, 0.5, 0.02, seed=4)
        assert g.number_of_vertices() == 30

    def test_planted_partition_dense_communities(self):
        g = planted_partition_graph(2, 12, 1.0, 0.0, seed=4)
        # with p_in = 1 and p_out = 0 each community is a clique, no bridges
        assert g.number_of_edges() == 2 * (12 * 11 // 2)

    def test_random_geometric_radius_monotone(self):
        sparse = random_geometric_graph(40, 0.1, seed=8)
        dense = random_geometric_graph(40, 0.4, seed=8)
        assert dense.number_of_edges() >= sparse.number_of_edges()

    def test_random_geometric_validation(self):
        with pytest.raises(ConfigurationError):
            random_geometric_graph(10, 0.0)

    def test_random_tree_is_tree(self):
        g = random_tree(25, seed=3)
        assert g.number_of_vertices() == 25
        assert g.number_of_edges() == 24
        assert is_connected(g)

    def test_random_tree_small_sizes(self):
        assert random_tree(1).number_of_vertices() == 1
        two = random_tree(2)
        assert two.number_of_edges() == 1

    def test_random_tree_reproducible(self):
        a = random_tree(15, seed=10)
        b = random_tree(15, seed=10)
        assert sorted(a.edges()) == sorted(b.edges())
