"""Tests for the persistent execution runtime.

Three layers of promises:

1. **Pool protocol** — :class:`~repro.execution.runtime.PersistentWorkerPool`
   returns shard results in order, installs each payload object exactly once
   (token-addressed reuse afterwards), follows the parent's eviction
   decisions, and never serves one request's payload to another request's
   tasks.
2. **Context** — :class:`~repro.execution.runtime.ExecutionContext` resolves
   its knobs like every other layer, memoizes payloads by key, owns a
   persistent arena stamped with the graph version (mutation invalidates),
   and pickles to ``None`` so it can never smuggle pool handles into a
   worker payload.
3. **Plan threading** — ``mp_context`` rides
   :class:`~repro.execution.ExecutionPlan` into the scheduler and the
   shared-cache arena consistently, with the ``REPRO_MP_CONTEXT`` override.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.execution import (
    ExecutionContext,
    ExecutionPlan,
    resolve_mp_context,
    resolve_plan,
    run_sharded,
    split_shards,
)
from repro.execution.runtime import (
    PAYLOAD_CACHE_LIMIT,
    PersistentWorkerPool,
    default_arena_rows,
    interned_payload,
)
from repro.execution.shared_cache import shared_memory_available
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np


def _scale_worker(shared, shard):
    # Module-level so the pool can pickle it by reference.
    return [shared["scale"] * item for item in shard]


@pytest.fixture
def pool():
    p = PersistentWorkerPool(2)
    yield p
    p.close()


# ----------------------------------------------------------------------
# Pool protocol
# ----------------------------------------------------------------------


class TestPersistentWorkerPool:
    def test_results_arrive_in_shard_order(self, pool):
        shards = split_shards(list(range(10)), 3)
        out = pool.run(_scale_worker, shards, {"scale": 2})
        assert out == [[0, 2, 4], [6, 8, 10], [12, 14, 16], [18]]

    def test_payload_installed_once_across_calls(self, pool):
        payload = {"scale": 3}
        shards = split_shards(list(range(4)), 2)
        first = pool.run(_scale_worker, shards, payload)
        second = pool.run(_scale_worker, shards, payload)
        assert first == second == [[0, 3], [6, 9]]
        assert pool.installs == 1
        assert pool.payload_token(payload) == 0

    def test_new_payload_objects_install_separately(self, pool):
        shards = split_shards(list(range(4)), 2)
        pool.run(_scale_worker, shards, {"scale": 1})
        pool.run(_scale_worker, shards, {"scale": 1})  # equal value, new object
        assert pool.installs == 2

    def test_interleaved_payloads_never_leak_across_requests(self, pool):
        """The leakage check: one pool, alternating requests with different
        payloads — every task must be answered from its own request's
        payload, not whatever was installed last."""
        a, b = {"scale": 2}, {"scale": 10}
        shards = split_shards(list(range(6)), 2)
        for _ in range(3):
            assert pool.run(_scale_worker, shards, a) == [[0, 2], [4, 6], [8, 10]]
            assert pool.run(_scale_worker, shards, b) == [[0, 10], [20, 30], [40, 50]]
        # Both payloads installed exactly once despite the interleaving.
        assert pool.installs == 2

    def test_eviction_is_lru_not_fifo(self, pool):
        """A hot payload (the interned graph snapshot) must survive a
        churn of one-shot payloads: reuse refreshes its recency, so only
        the genuinely cold entries fall out."""
        hot = {"scale": 100}
        shards = [[1]]
        pool.run(_scale_worker, shards, hot)  # installed first
        for i in range(PAYLOAD_CACHE_LIMIT - 1):
            pool.run(_scale_worker, shards, {"scale": i})
            pool.run(_scale_worker, shards, hot)  # touched every round
        # One more install fills past the limit: the oldest *unused*
        # payload is evicted, never the hot one.
        pool.run(_scale_worker, shards, {"scale": 999})
        assert pool.payload_token(hot) is not None
        before = pool.installs
        assert pool.run(_scale_worker, shards, hot) == [[100]]
        assert pool.installs == before  # no re-broadcast of the hot payload

    def test_eviction_follows_parent_decisions(self, pool):
        shards = [[1]]
        payloads = [{"scale": i} for i in range(PAYLOAD_CACHE_LIMIT + 2)]
        for payload in payloads:
            assert pool.run(_scale_worker, shards, payload) == [[payload["scale"]]]
        # The oldest payloads fell out of the parent memo...
        assert pool.payload_token(payloads[0]) is None
        assert pool.payload_token(payloads[1]) is None
        # ...and re-running one re-installs (workers dropped it too, so the
        # fresh token must resolve — a drifted worker cache would KeyError).
        before = pool.installs
        assert pool.run(_scale_worker, shards, payloads[0]) == [[0]]
        assert pool.installs == before + 1

    def test_failed_broadcast_loses_no_eviction_bookkeeping(self, pool):
        payloads = [{"scale": i} for i in range(PAYLOAD_CACHE_LIMIT)]
        for payload in payloads:
            pool.run(_scale_worker, [[1]], payload)
        installed_before = dict(pool._installed)

        def boom(*args, **kwargs):
            raise RuntimeError("simulated broadcast failure")

        real_map = pool._pool.map
        pool._pool.map = boom
        with pytest.raises(RuntimeError, match="simulated"):
            pool.ensure_payload({"scale": 999})
        pool._pool.map = real_map
        # Nothing was half-forgotten: the memo is exactly as before, so a
        # retry re-decides (and re-broadcasts) the same evictions.
        assert dict(pool._installed) == installed_before
        assert pool.run(_scale_worker, [[1]], {"scale": 999}) == [[999]]

    def test_pool_refuses_pickling(self, pool):
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(pool)

    def test_closed_pool_raises(self):
        p = PersistentWorkerPool(2)
        p.close()
        p.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            p.run(_scale_worker, [[1]], {"scale": 1})

    def test_validates_process_count(self):
        with pytest.raises(ConfigurationError):
            PersistentWorkerPool(0)


# ----------------------------------------------------------------------
# run_sharded provider selection
# ----------------------------------------------------------------------


class TestRunShardedProviders:
    def test_runtime_routes_through_persistent_pool(self):
        with ExecutionContext(n_jobs=2) as ctx:
            shards = split_shards(list(range(6)), 2)
            payload = {"scale": 4}
            out = run_sharded(_scale_worker, shards, n_jobs=2, shared=payload, runtime=ctx)
            assert out == [[0, 4], [8, 12], [16, 20]]
            assert ctx.worker_pool().installs == 1
            # Second call through a plan carrying the runtime: same pool.
            plan = ExecutionPlan(n_jobs=2, runtime=ctx)
            out2 = run_sharded(_scale_worker, shards, n_jobs=2, shared=payload, plan=plan)
            assert out2 == out
            assert ctx.worker_pool().installs == 1

    def test_broken_pool_degrades_to_ephemeral_fallback(self):
        """A pool that breaks mid-session (worker death surfaces as a
        RuntimeError from the install/token protocol) must not poison the
        context: later calls fall back to run_sharded's own paths."""
        with ExecutionContext(n_jobs=2) as ctx:
            pool = ctx.worker_pool()

            def boom(fn, shards, payload):
                raise RuntimeError("simulated worker death")

            pool.run = boom
            with pytest.warns(RuntimeWarning, match="falls back to per-call"):
                assert ctx.map_sharded(_scale_worker, [[1], [2]], {"scale": 2}) is None
            # The context degraded permanently; run_sharded's ephemeral
            # path answers and results are unchanged.
            out = run_sharded(
                _scale_worker, [[1], [2]], n_jobs=2, shared={"scale": 2}, runtime=ctx
            )
            assert out == [[2], [4]]
            assert ctx.stats()["pool_active"] is False

    def test_inline_context_falls_through(self):
        with ExecutionContext(n_jobs=1) as ctx:
            out = run_sharded(
                _scale_worker, [[1], [2]], n_jobs=1, shared={"scale": 5}, runtime=ctx
            )
            assert out == [[5], [10]]
            assert ctx.worker_pool() is None

    def test_single_shard_stays_inline_even_with_runtime(self):
        with ExecutionContext(n_jobs=2) as ctx:
            out = run_sharded(
                _scale_worker, [[1, 2]], n_jobs=2, shared={"scale": 2}, runtime=ctx
            )
            assert out == [[2, 4]]
            # No pool was needed for a single shard.
            assert ctx.stats()["pool_active"] is False


# ----------------------------------------------------------------------
# ExecutionContext
# ----------------------------------------------------------------------


class TestExecutionContext:
    def test_jobs_resolution_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        ctx = ExecutionContext()
        assert ctx.n_jobs == 3
        ctx.close()

    def test_invalid_mp_context_rejected(self):
        with pytest.raises(ConfigurationError, match="start method"):
            ExecutionContext(mp_context="bogus")

    def test_invalid_arena_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="arena_capacity"):
            ExecutionContext(arena_capacity=0)

    def test_cached_payload_returns_same_object(self):
        with ExecutionContext() as ctx:
            first = ctx.cached_payload("key", lambda: {"built": 1})
            second = ctx.cached_payload("key", lambda: {"built": 2})
            assert first is second

    def test_interned_payload_helper(self):
        assert interned_payload(None, "k", lambda: 41) == 41
        plan = ExecutionPlan(n_jobs=2)  # no runtime attached
        assert interned_payload(plan, "k", lambda: 42) == 42
        with ExecutionContext() as ctx:
            plan = ExecutionPlan(n_jobs=2, runtime=ctx)
            a = interned_payload(plan, "k", lambda: {"x": 1})
            b = interned_payload(plan, "k", lambda: {"x": 2})
            assert a is b

    def test_context_pickles_to_none(self):
        with ExecutionContext(n_jobs=2) as ctx:
            assert pickle.loads(pickle.dumps(ctx)) is None

    def test_closed_context_raises(self):
        ctx = ExecutionContext()
        ctx.close()
        ctx.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            ctx.cached_payload("k", dict)

    def test_default_arena_rows_scales_with_graph(self):
        assert default_arena_rows(10) == 10  # small graphs: every source a row
        big = default_arena_rows(10_000_000)
        assert 1 <= big < 10_000_000  # byte budget caps huge graphs


@pytest.mark.skipif(
    np is None or not shared_memory_available(),
    reason="the persistent arena requires numpy and working shared memory",
)
class TestPersistentArena:
    def test_arena_survives_across_calls_and_stamps_version(self):
        graph = barabasi_albert_graph(30, 2, seed=1)
        with ExecutionContext() as ctx:
            arena = ctx.dependency_arena(graph)
            assert arena is not None
            assert arena.capacity == 30
            assert ctx.dependency_arena(graph) is arena  # same graph version

    def test_mutation_invalidates_arena_and_payload_memo(self):
        graph = barabasi_albert_graph(30, 2, seed=1)
        with ExecutionContext() as ctx:
            arena = ctx.dependency_arena(graph)
            arena.put(0, np.zeros(30))
            payload = ctx.cached_payload("p", lambda: {"stale": True})
            graph.add_edge(0, 29)
            fresh = ctx.dependency_arena(graph)
            assert fresh is not arena
            assert fresh.published() == 0
            assert ctx.cached_payload("p", lambda: {"stale": False}) is not payload

    def test_different_graph_object_invalidates_even_with_equal_shape(self):
        """The stamp holds the graph by reference: a *different* graph
        object — even one with the same vertex count and version, as a
        recycled id after GC would present — must never be served the
        previous graph's arena."""
        g1 = barabasi_albert_graph(30, 2, seed=1)
        g2 = barabasi_albert_graph(30, 2, seed=2)
        assert g1.version == g2.version
        with ExecutionContext() as ctx:
            arena1 = ctx.dependency_arena(g1)
            arena1.put(0, np.zeros(30))
            arena2 = ctx.dependency_arena(g2)
            assert arena2 is not arena1
            assert arena2.published() == 0

    def test_explicit_capacity_respected_and_clamped(self):
        graph = barabasi_albert_graph(30, 2, seed=1)
        with ExecutionContext(arena_capacity=7) as ctx:
            assert ctx.dependency_arena(graph).capacity == 7
        with ExecutionContext(arena_capacity=10_000) as ctx:
            assert ctx.dependency_arena(graph).capacity == 30  # clamped to |V|

    def test_close_destroys_arena(self):
        graph = barabasi_albert_graph(20, 2, seed=1)
        ctx = ExecutionContext()
        arena = ctx.dependency_arena(graph)
        name = arena.name
        ctx.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# mp_context knob threading
# ----------------------------------------------------------------------


class TestMpContextKnob:
    def test_plan_validates_start_method(self):
        with pytest.raises(ConfigurationError, match="start method"):
            ExecutionPlan(mp_context="bogus")
        assert ExecutionPlan(mp_context="spawn").mp_context == "spawn"

    def test_env_override(self, monkeypatch):
        assert resolve_mp_context(None) is None
        monkeypatch.setenv("REPRO_MP_CONTEXT", "spawn")
        assert resolve_mp_context(None) == "spawn"
        assert resolve_mp_context("fork") == "fork"  # explicit wins
        monkeypatch.setenv("REPRO_MP_CONTEXT", "bogus")
        with pytest.raises(ConfigurationError, match="start method"):
            resolve_mp_context(None)

    def test_resolve_plan_fills_mp_context_without_engaging(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_CONTEXT", "spawn")
        assert resolve_plan(None) is None  # never engages on its own
        plan = resolve_plan(None, n_jobs=2)
        assert plan.mp_context == "spawn"


# ----------------------------------------------------------------------
# shared_memory_available memoization (satellite)
# ----------------------------------------------------------------------


class TestSharedMemoryProbeMemo:
    def test_probe_runs_once(self, monkeypatch):
        import repro.execution.shared_cache as shared_cache

        calls = []
        real_probe = shared_cache._probe_shared_memory

        def counting_probe():
            calls.append(1)
            return real_probe()

        monkeypatch.setattr(shared_cache, "_probe_shared_memory", counting_probe)
        monkeypatch.setattr(shared_cache, "_PROBE_RESULT", None)
        first = shared_cache.shared_memory_available()
        second = shared_cache.shared_memory_available()
        assert first == second
        assert len(calls) == 1
        shared_cache.shared_memory_available(refresh=True)
        assert len(calls) == 2

    def test_memo_never_overrides_missing_preconditions(self, monkeypatch):
        import repro.execution.shared_cache as shared_cache

        monkeypatch.setattr(shared_cache, "_PROBE_RESULT", True)
        monkeypatch.setattr(shared_cache, "_shared_memory", None)
        assert not shared_cache.shared_memory_available()
